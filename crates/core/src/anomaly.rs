//! Anomaly detection over monitoring results.
//!
//! The paper shows Mantra's data being used to *detect and debug* routing
//! problems: the flagship example is Figure 9's unicast route injection
//! (a sharp spike in the mrouted route table on 1998-10-14, diagnosed
//! off-line as leaked unicast routes). This module automates the
//! detections the authors did by eye:
//!
//! * [`SpikeDetector`] — an online robust z-score detector over any
//!   series (route counts, session counts),
//! * [`detect_injection`] — the specific signature of route injection:
//!   a mass of brand-new routes arriving in one snapshot through one
//!   gateway,
//! * [`InconsistencyMonitor`] — cross-router DVMRP divergence beyond a
//!   floor (the paper's "inconsistent state" observation).

use serde::{Deserialize, Serialize};

use mantra_net::{Ip, SimTime};

use crate::stats::{ConsistencyReport, RouteChurn};
use crate::tables::{LearnedFrom, Tables};

/// A detected anomaly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// When the triggering snapshot was captured.
    pub at: SimTime,
    /// Which router's data triggered it.
    pub router: String,
    /// The other router involved, for detections that compare two routers
    /// (cross-router inconsistency names both sides rather than blaming
    /// whichever router sorts first). `None` for single-router detections.
    pub peer: Option<String>,
    /// What was detected.
    pub kind: AnomalyKind,
}

/// Classification of detected anomalies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A value jumped far above its recent baseline.
    Spike {
        /// The offending value.
        value: f64,
        /// The recent baseline (median).
        baseline: f64,
    },
    /// A value crashed far below its recent baseline.
    Crash {
        /// The offending value.
        value: f64,
        /// The recent baseline (median).
        baseline: f64,
    },
    /// Route-injection signature: many new routes via one gateway at once.
    RouteInjection {
        /// How many routes appeared in one snapshot.
        new_routes: usize,
        /// The gateway that sourced most of them, when identifiable.
        gateway: Option<Ip>,
        /// Fraction of the new routes behind that gateway.
        gateway_share: f64,
    },
    /// Two routers' DVMRP views diverged beyond tolerance.
    Inconsistency {
        /// The other router.
        peer: String,
        /// Jaccard similarity of reachable route sets.
        similarity: f64,
    },
}

/// Online spike/crash detector using median ± k·MAD over a sliding window.
/// Median/MAD rather than mean/stddev so a single spike does not poison
/// the baseline it is judged against.
#[derive(Clone, Debug)]
pub struct SpikeDetector {
    window: Vec<f64>,
    capacity: usize,
    /// Robust z-score threshold.
    pub k: f64,
    /// Ignore deviations smaller than this absolute floor (quiet series
    /// otherwise alert on noise).
    pub min_delta: f64,
}

impl SpikeDetector {
    /// Detector with a `capacity`-sample baseline and threshold `k`.
    pub fn new(capacity: usize, k: f64, min_delta: f64) -> Self {
        SpikeDetector {
            window: Vec::with_capacity(capacity),
            capacity: capacity.max(4),
            k,
            min_delta,
        }
    }

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = xs.len();
        if n.is_multiple_of(2) {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        } else {
            xs[n / 2]
        }
    }

    /// Feeds one observation; returns a detection against the *previous*
    /// baseline, then folds the observation in.
    pub fn observe(&mut self, value: f64) -> Option<AnomalyKind> {
        let detection = if self.window.len() >= self.capacity / 2 {
            let baseline = Self::median(self.window.clone());
            let mad = Self::median(
                self.window
                    .iter()
                    .map(|x| (x - baseline).abs())
                    .collect::<Vec<_>>(),
            )
            .max(1e-9);
            let delta = value - baseline;
            if delta.abs() >= self.min_delta && delta.abs() / (1.4826 * mad) >= self.k {
                Some(if delta > 0.0 {
                    AnomalyKind::Spike { value, baseline }
                } else {
                    AnomalyKind::Crash { value, baseline }
                })
            } else {
                None
            }
        } else {
            None
        };
        // Outliers do not enter the baseline; normal values do.
        if detection.is_none() {
            if self.window.len() == self.capacity {
                self.window.remove(0);
            }
            self.window.push(value);
        }
        detection
    }
}

/// Checks consecutive snapshots for the route-injection signature:
/// at least `min_new` routes appearing at once, mostly via one gateway.
pub fn detect_injection(prev: &Tables, next: &Tables, min_new: usize) -> Option<AnomalyKind> {
    let churn = RouteChurn::between(prev, next);
    if churn.added < min_new {
        return None;
    }
    // Attribute the new routes to gateways.
    let mut by_gw: std::collections::BTreeMap<Option<Ip>, usize> = Default::default();
    let mut new_routes = 0usize;
    for r in next.routes_of(LearnedFrom::Dvmrp) {
        if !prev.routes.contains_key(&(LearnedFrom::Dvmrp, r.prefix)) {
            *by_gw.entry(r.next_hop).or_default() += 1;
            new_routes += 1;
        }
    }
    let (gateway, count) = by_gw
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .unwrap_or((None, 0));
    let share = count as f64 / new_routes.max(1) as f64;
    if share >= 0.8 {
        Some(AnomalyKind::RouteInjection {
            new_routes,
            gateway,
            gateway_share: share,
        })
    } else {
        None
    }
}

/// Flags cross-router DVMRP divergence beyond a similarity floor.
#[derive(Clone, Copy, Debug)]
pub struct InconsistencyMonitor {
    /// Minimum acceptable Jaccard similarity.
    pub min_similarity: f64,
    /// Ignore comparisons where either table is smaller than this (tiny
    /// tables make similarity meaningless).
    pub min_routes: usize,
}

impl Default for InconsistencyMonitor {
    fn default() -> Self {
        InconsistencyMonitor {
            min_similarity: 0.85,
            min_routes: 20,
        }
    }
}

impl InconsistencyMonitor {
    /// Compares two routers' snapshots.
    pub fn check(&self, a: &Tables, b: &Tables) -> Option<(ConsistencyReport, AnomalyKind)> {
        if a.reachable_dvmrp_routes() < self.min_routes
            || b.reachable_dvmrp_routes() < self.min_routes
        {
            return None;
        }
        let report = ConsistencyReport::between(a, b);
        let similarity = report.similarity();
        if similarity < self.min_similarity {
            Some((
                report,
                AnomalyKind::Inconsistency {
                    peer: b.router.clone(),
                    similarity,
                },
            ))
        } else {
            None
        }
    }

    /// All pairwise inconsistency anomalies among `views`, in `(i, j)`
    /// order with `i < j`, through the [`ConsistencyMatrix`] group-by
    /// join — each distinct pair of reachable-set views is merged once
    /// instead of once per router pair. Output is identical to
    /// [`InconsistencyMonitor::sweep_reference`], the kept O(n²) loop
    /// over [`InconsistencyMonitor::check`].
    pub fn sweep(&self, views: &[&Tables], now: SimTime) -> Vec<Anomaly> {
        let mut matrix = crate::stats::ConsistencyMatrix::build(views, self.min_routes);
        let mut out = Vec::new();
        for i in 0..views.len() {
            if !matrix.eligible(i) {
                continue;
            }
            for j in (i + 1)..views.len() {
                let Some(report) = matrix.report(i, j) else {
                    continue;
                };
                let similarity = report.similarity();
                if similarity < self.min_similarity {
                    out.push(Anomaly {
                        at: now,
                        router: views[i].router.clone(),
                        peer: Some(views[j].router.clone()),
                        kind: AnomalyKind::Inconsistency {
                            peer: views[j].router.clone(),
                            similarity,
                        },
                    });
                }
            }
        }
        out
    }

    /// The behavioural reference for [`InconsistencyMonitor::sweep`]:
    /// every pair compared in full through [`InconsistencyMonitor::check`].
    pub fn sweep_reference(&self, views: &[&Tables], now: SimTime) -> Vec<Anomaly> {
        let mut out = Vec::new();
        for i in 0..views.len() {
            for j in (i + 1)..views.len() {
                if let Some((_, kind)) = self.check(views[i], views[j]) {
                    out.push(Anomaly {
                        at: now,
                        router: views[i].router.clone(),
                        peer: Some(views[j].router.clone()),
                        kind,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::RouteRow;
    use mantra_net::Prefix;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 10, 14)
    }

    fn table_with_routes(n: u32, gw: Ip) -> Tables {
        let mut t = Tables::new("ucsb", t0());
        for i in 0..n {
            t.add_route(RouteRow {
                prefix: Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + (i << 16)), 16).unwrap(),
                next_hop: Some(gw),
                metric: 3,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        t
    }

    #[test]
    fn spike_detector_fires_on_jump_not_noise() {
        let mut d = SpikeDetector::new(16, 6.0, 50.0);
        for i in 0..16 {
            assert_eq!(d.observe(1_000.0 + (i % 5) as f64 * 10.0), None);
        }
        let hit = d.observe(3_400.0);
        assert!(matches!(hit, Some(AnomalyKind::Spike { .. })), "{hit:?}");
        // The spike did not poison the baseline: a return to normal is
        // quiet, another spike still fires.
        assert_eq!(d.observe(1_020.0), None);
        assert!(matches!(
            d.observe(3_400.0),
            Some(AnomalyKind::Spike { .. })
        ));
        // And a crash fires downward.
        assert!(matches!(d.observe(10.0), Some(AnomalyKind::Crash { .. })));
    }

    #[test]
    fn spike_detector_respects_min_delta() {
        let mut d = SpikeDetector::new(8, 3.0, 500.0);
        for _ in 0..8 {
            d.observe(100.0);
        }
        // Relative jump is huge but below the absolute floor.
        assert_eq!(d.observe(400.0), None);
    }

    #[test]
    fn injection_signature() {
        let gw_normal = Ip::new(10, 0, 0, 1);
        let gw_leak = Ip::new(10, 9, 9, 9);
        let prev = table_with_routes(50, gw_normal);
        let mut next = table_with_routes(50, gw_normal);
        for i in 0..2_000u32 {
            next.add_route(RouteRow {
                prefix: Prefix::new(
                    Ip(Ip::new(192, 0, 0, 0).0 + ((i / 256) << 16) + ((i % 256) << 8)),
                    24,
                )
                .unwrap(),
                next_hop: Some(gw_leak),
                metric: 1,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        let hit = detect_injection(&prev, &next, 100).unwrap();
        match hit {
            AnomalyKind::RouteInjection {
                new_routes,
                gateway,
                gateway_share,
            } => {
                assert_eq!(new_routes, 2_000);
                assert_eq!(gateway, Some(gw_leak));
                assert!(gateway_share > 0.99);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // No detection between identical snapshots.
        assert!(detect_injection(&prev, &prev, 100).is_none());
        // Nor when growth is spread across gateways.
        let mut organic = table_with_routes(50, gw_normal);
        for i in 0..200u32 {
            organic.add_route(RouteRow {
                prefix: Prefix::new(Ip(Ip::new(172, 16, 0, 0).0 + (i << 8)), 24).unwrap(),
                next_hop: Some(Ip(Ip::new(10, 0, 0, 0).0 + i % 5)),
                metric: 2,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        assert!(detect_injection(&prev, &organic, 100).is_none());
    }

    #[test]
    fn inconsistency_monitor_thresholds() {
        let gw = Ip::new(10, 0, 0, 1);
        let a = table_with_routes(100, gw);
        let mut b = table_with_routes(60, gw); // missing 40 routes
        b.router = "fixw".into();
        let mon = InconsistencyMonitor::default();
        let (report, kind) = mon.check(&a, &b).expect("divergence detected");
        assert_eq!(report.only_first, 40);
        assert!(matches!(kind, AnomalyKind::Inconsistency { similarity, .. } if similarity < 0.85));
        // Similar tables pass.
        let c = table_with_routes(98, gw);
        assert!(mon.check(&a, &c).is_none());
        // Tiny tables are skipped.
        let tiny_a = table_with_routes(5, gw);
        let tiny_b = table_with_routes(1, gw);
        assert!(mon.check(&tiny_a, &tiny_b).is_none());
    }

    #[test]
    fn sweep_matches_pairwise_reference() {
        let gw = Ip::new(10, 0, 0, 1);
        // A fleet with three distinct views (100, 60, 98 routes), a
        // duplicate view, and a below-floor table mixed in.
        let mut views: Vec<Tables> = Vec::new();
        for (i, n) in [100u32, 60, 98, 60, 5].into_iter().enumerate() {
            let mut t = table_with_routes(n, gw);
            t.router = format!("r{i}");
            views.push(t);
        }
        let refs: Vec<&Tables> = views.iter().collect();
        let mon = InconsistencyMonitor::default();
        let joined = mon.sweep(&refs, t0());
        let reference = mon.sweep_reference(&refs, t0());
        assert_eq!(joined, reference);
        // The divergent pairs fire; make sure the sweep found some.
        assert!(!joined.is_empty());
        // An all-identical fleet is silent.
        let same: Vec<Tables> = (0..4).map(|_| table_with_routes(50, gw)).collect();
        let same_refs: Vec<&Tables> = same.iter().collect();
        assert!(mon.sweep(&same_refs, t0()).is_empty());
    }
}
