//! Shared driving code for the figure-regeneration binaries and the
//! Criterion benches.
//!
//! Every figure binary follows the same shape: build the scenario behind
//! the figure, drive the simulation and the Mantra monitor in lock-step at
//! the collection interval, then print the series the paper plots (CSV),
//! an ASCII rendering, and the headline statistics EXPERIMENTS.md records.
//!
//! Set `MANTRA_FAST=1` to shrink the simulated windows (~20× faster);
//! shapes survive, absolute spans shrink. The EXPERIMENTS.md numbers come
//! from full runs.

use mantra_core::collector::SimAccess;
use mantra_core::{Monitor, MonitorConfig};
use mantra_net::{SimDuration, SimTime};
use mantra_sim::Scenario;

/// True when `MANTRA_FAST=1` (CI-scale runs).
pub fn fast_mode() -> bool {
    std::env::var("MANTRA_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The collection tick for the six-month scenarios: `MANTRA_TICK_MINS`
/// (default 15, the paper's interval). Coarser ticks run proportionally
/// faster with the same figure shapes.
pub fn paper_tick() -> SimDuration {
    let mins = std::env::var("MANTRA_TICK_MINS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|m| (1..=120).contains(m))
        .unwrap_or(15);
    SimDuration::mins(mins)
}

/// Drives `sc` from its current clock to `until`, running one monitor
/// cycle per interval. Returns the number of cycles run.
pub fn drive_until(sc: &mut Scenario, monitor: &mut Monitor, until: SimTime) -> usize {
    let mut cycles = 0;
    loop {
        let next = sc.sim.clock + monitor.cfg.interval;
        if next > until {
            break;
        }
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
        cycles += 1;
    }
    cycles
}

/// Drives for a duration from the current clock.
pub fn drive_for(sc: &mut Scenario, monitor: &mut Monitor, span: SimDuration) -> usize {
    let until = sc.sim.clock + span;
    drive_until(sc, monitor, until)
}

/// A monitor configured for a scenario's collection points at the
/// scenario's tick.
pub fn monitor_for(sc: &Scenario) -> Monitor {
    let mut names = vec![sc.sim.net.topo.router(sc.fixw).name.clone()];
    let ucsb = sc.sim.net.topo.router(sc.ucsb).name.clone();
    if names[0] != ucsb {
        names.push(ucsb);
    }
    Monitor::new(MonitorConfig {
        routers: names,
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    })
}

/// Prints a series' summary line: n, mean, median, stddev, min, max.
pub fn print_summary(s: &mantra_core::stats::Series) {
    println!(
        "  {:<28} n={:<5} mean={:<10.2} median={:<10.2} stddev={:<10.2} min={:<10.2} max={:.2}",
        s.name,
        s.len(),
        s.mean(),
        s.median(),
        s.stddev(),
        s.min().map(|m| m.1).unwrap_or(0.0),
        s.max().map(|m| m.1).unwrap_or(0.0),
    );
}

/// Standard figure-binary header.
pub fn banner(figure: &str, what: &str) {
    println!("==================================================================");
    println!("{figure}: {what}");
    println!(
        "mode: {}",
        if fast_mode() {
            "FAST (MANTRA_FAST=1, shortened window)"
        } else {
            "full paper window"
        }
    );
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_counts_cycles() {
        let mut sc = Scenario::transition_snapshot(77, 0.0);
        let mut monitor = monitor_for(&sc);
        let n = drive_for(&mut sc, &mut monitor, SimDuration::hours(3));
        assert_eq!(n, 12, "15-min interval over 3 hours");
        assert_eq!(monitor.cycles(), 12);
        assert_eq!(monitor.cfg.routers.len(), 2);
    }

    #[test]
    fn monitor_for_single_point_scenario() {
        let sc = Scenario::ucsb_injection_day(1);
        let monitor = monitor_for(&sc);
        assert_eq!(monitor.cfg.routers.len(), 1);
        assert_eq!(monitor.cfg.interval, SimDuration::mins(5));
    }
}
