//! Figure 8 — DVMRP at FIXW, long-term: the number of DVMRP networks
//! over two years.
//!
//! Paper shape to reproduce: the count holds through 1999 (domains kept
//! advertising DVMRP routes even after moving to sparse-mode forwarding),
//! then declines steeply through 2000 as DVMRP is decommissioned, ending
//! near zero.

use mantra_bench::{banner, drive_until, fast_mode, monitor_for, print_summary};
use mantra_core::output::Graph;
use mantra_net::SimTime;
use mantra_sim::Scenario;

fn main() {
    banner("Figure 8", "DVMRP networks at FIXW over two years");
    let csv = std::env::args().any(|a| a == "--csv");
    let mut sc = Scenario::dvmrp_two_years(1998);
    let mut monitor = monitor_for(&sc);
    let end = if fast_mode() {
        // Fast mode samples one day per month.
        sc.sim.end_time()
    } else {
        sc.sim.end_time()
    };
    if fast_mode() {
        let mut month = SimTime::from_ymd(1998, 11, 1);
        while month < end {
            sc.sim.advance_to(month);
            drive_until(
                &mut sc,
                &mut monitor,
                month + mantra_net::SimDuration::days(1),
            );
            let (y, m, _) = month.ymd();
            let (ny, nm) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
            month = SimTime::from_ymd(ny, nm, 1);
        }
    } else {
        drive_until(&mut sc, &mut monitor, end);
    }

    let routes = monitor.route_series("fixw", "fixw-dvmrp-routes", |r| r.dvmrp_reachable as f64);
    println!("\nseries summary:");
    print_summary(&routes);

    // Quarterly means show the decline profile.
    println!("\nquarterly means:");
    let quarters = [
        ((1998, 11), (1999, 2)),
        ((1999, 2), (1999, 5)),
        ((1999, 5), (1999, 8)),
        ((1999, 8), (1999, 11)),
        ((1999, 11), (2000, 2)),
        ((2000, 2), (2000, 5)),
        ((2000, 5), (2000, 8)),
        ((2000, 8), (2000, 11)),
    ];
    let mut means = Vec::new();
    for ((y1, m1), (y2, m2)) in quarters {
        let w = routes.window(SimTime::from_ymd(y1, m1, 1), SimTime::from_ymd(y2, m2, 1));
        if !w.is_empty() {
            println!(
                "  {y1}-{m1:02} .. {y2}-{m2:02}: mean {:.0} routes",
                w.mean()
            );
            means.push(w.mean());
        }
    }
    println!("\nobservations:");
    if let (Some(first), Some(last)) = (means.first(), means.last()) {
        println!(
            "  decline: {first:.0} -> {last:.0} routes ({:.0}% drop; paper: DVMRP \"almost nonexistent today\")",
            100.0 * (first - last) / first.max(1.0)
        );
    }

    let mut graph = Graph::new("Figure 8: DVMRP networks at FIXW, Nov 1998 - Nov 2000");
    graph.overlay(routes.clone());
    println!("\n{}", graph.render(100, 16));
    if csv {
        let mut g = Graph::new("fig8");
        g.overlay(routes);
        println!("{}", g.to_csv());
    }
}
