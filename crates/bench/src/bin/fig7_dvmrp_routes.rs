//! Figure 7 — DVMRP route statistics: number of routes as seen at the
//! UCSB router (mrouted) and at FIXW, over the evaluation window.
//!
//! Paper shape to reproduce: the count varies significantly over time
//! (unstable routing), and the two routers' tables are mutually
//! inconsistent — they do not see the same set of networks at the same
//! time (lost route reports, inconsistent aggregation).

use mantra_bench::{banner, drive_until, fast_mode, monitor_for, print_summary};
use mantra_core::output::Graph;
use mantra_core::stats::ConsistencyReport;
use mantra_net::SimDuration;
use mantra_sim::Scenario;

fn main() {
    banner("Figure 7", "DVMRP route counts at UCSB and FIXW");
    let csv = std::env::args().any(|a| a == "--csv");
    let mut sc = Scenario::fixw_six_months_with(1998, mantra_bench::paper_tick());
    let mut monitor = monitor_for(&sc);
    let end = if fast_mode() {
        sc.sim.clock + SimDuration::days(10)
    } else {
        sc.sim.end_time()
    };
    drive_until(&mut sc, &mut monitor, end);

    let fixw = monitor.route_series("fixw", "fixw-dvmrp-routes", |r| r.dvmrp_reachable as f64);
    let ucsb = monitor.route_series("ucsb-gw", "ucsb-dvmrp-routes", |r| r.dvmrp_reachable as f64);

    println!("\nseries summaries:");
    print_summary(&fixw);
    print_summary(&ucsb);

    println!("\nobservations:");
    println!(
        "  route-count variation: fixw stddev {:.1}, ucsb stddev {:.1} (paper: unstable routes)",
        fixw.stddev(),
        ucsb.stddev()
    );
    // Inconsistency: compare the final snapshots directly.
    if let (Some(a), Some(b)) = (monitor.latest("fixw"), monitor.latest("ucsb-gw")) {
        let c = ConsistencyReport::between(a, b);
        println!(
            "  final-snapshot consistency: shared {} / only-fixw {} / only-ucsb {}  (Jaccard {:.2}; paper: inconsistent state)",
            c.shared,
            c.only_first,
            c.only_second,
            c.similarity()
        );
    }
    // Churn accounting.
    let churn_total: usize = monitor
        .churn_history("fixw")
        .iter()
        .map(|(_, c)| c.total())
        .sum();
    println!(
        "  cumulative route-change events at fixw: {churn_total} over {} cycles",
        monitor.cycles()
    );
    let inconsistencies = monitor
        .anomalies
        .iter()
        .filter(|a| {
            matches!(
                a.kind,
                mantra_core::anomaly::AnomalyKind::Inconsistency { .. }
            )
        })
        .count();
    println!("  inconsistency alarms raised: {inconsistencies}");

    let mut graph = Graph::new("Figure 7: DVMRP routes at UCSB (top) and FIXW (bottom)");
    graph.overlay(ucsb.clone()).overlay(fixw.clone());
    println!("\n{}", graph.render(100, 16));
    if csv {
        let mut g = Graph::new("fig7");
        g.overlay(ucsb).overlay(fixw);
        println!("{}", g.to_csv());
    }
}
