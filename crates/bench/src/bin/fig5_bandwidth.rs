//! Figure 5 — Bandwidth usage at FIXW: (left) aggregate multicast traffic
//! from all senders; (right) bandwidth saved by multicast, as a multiple
//! of the multicast usage.
//!
//! Paper numbers to land near: average around 4 Mbps with high variance
//! (σ ≈ 2.2 Mbps over a median of 2.9 Mbps), spiky because of short-lived
//! high-bandwidth streams; the savings multiple comes from the
//! density × stream-rate unicast-equivalent model.

use mantra_bench::{banner, drive_until, fast_mode, monitor_for, print_summary};
use mantra_core::output::Graph;
use mantra_net::SimDuration;
use mantra_sim::Scenario;

fn main() {
    banner("Figure 5", "bandwidth through FIXW and bandwidth saved");
    let csv = std::env::args().any(|a| a == "--csv");
    let mut sc = Scenario::fixw_six_months_with(1998, mantra_bench::paper_tick());
    let mut monitor = monitor_for(&sc);
    let end = if fast_mode() {
        sc.sim.clock + SimDuration::days(10)
    } else {
        sc.sim.end_time()
    };
    drive_until(&mut sc, &mut monitor, end);

    let bw_mbps = monitor.usage_series("fixw", "bandwidth-mbps", |u| u.total_bandwidth.mbps());
    let saved = monitor.usage_series("fixw", "saved-multiple", |u| u.bandwidth_saved_multiple);

    println!("\nseries summaries:");
    print_summary(&bw_mbps);
    print_summary(&saved);

    println!("\nobservations (paper: mean ~4 Mbps, median 2.9, stddev 2.2):");
    println!(
        "  bandwidth mean={:.2} Mbps  median={:.2} Mbps  stddev={:.2} Mbps",
        bw_mbps.mean(),
        bw_mbps.median(),
        bw_mbps.stddev()
    );
    println!(
        "  high variance confirmed: stddev/median = {:.2} (paper: 2.2/2.9 = 0.76)",
        bw_mbps.stddev() / bw_mbps.median().max(1e-9)
    );
    println!(
        "  mean bandwidth-saved multiple: {:.1}x (unicast would cost that much more)",
        saved.mean()
    );

    let mut left = Graph::new("Figure 5 (left): multicast traffic through FIXW, Mbps");
    left.overlay(bw_mbps.clone());
    println!("\n{}", left.render(100, 14));
    let mut right = Graph::new("Figure 5 (right): bandwidth saved (multiple of multicast usage)");
    right.overlay(saved.clone());
    println!("{}", right.render(100, 12));
    if csv {
        let mut g = Graph::new("fig5");
        g.overlay(bw_mbps).overlay(saved);
        println!("{}", g.to_csv());
    }
}
