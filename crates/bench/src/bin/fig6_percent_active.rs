//! Figure 6 — Percentage active at FIXW: (left) % of sessions that are
//! active; (right) % of participants that are senders; across the
//! sparse-mode transition.
//!
//! Paper shape to reproduce: the sender/participant ratio clearly rises
//! after the transition (sparse-mode filtering removed passive state the
//! router no longer needed), while the active-session ratio rises only
//! marginally but its *variance drops* — availability of sessions at FIXW
//! stabilised.

use mantra_bench::{banner, drive_until, fast_mode, monitor_for, print_summary};
use mantra_core::output::Graph;
use mantra_core::stats::Series;
use mantra_net::{SimDuration, SimTime};
use mantra_sim::Scenario;

fn main() {
    banner(
        "Figure 6",
        "% sessions active and % participants sending, across the transition",
    );
    let csv = std::env::args().any(|a| a == "--csv");
    let mut sc = Scenario::fixw_six_months_with(1998, mantra_bench::paper_tick());
    let mut monitor = monitor_for(&sc);
    let end = if fast_mode() {
        // Fast mode still must straddle the transition: compress by
        // sampling a pre-transition week and a post-transition week.
        sc.sim.end_time()
    } else {
        sc.sim.end_time()
    };
    if fast_mode() {
        // Week 1 (November) …
        let wk1 = sc.sim.clock + SimDuration::days(5);
        drive_until(&mut sc, &mut monitor, wk1);
        // … skip to mid-March (after most migrations) without monitoring.
        sc.sim.advance_to(SimTime::from_ymd(1999, 3, 15));
        let wk2 = sc.sim.clock + SimDuration::days(5);
        drive_until(&mut sc, &mut monitor, wk2);
    } else {
        drive_until(&mut sc, &mut monitor, end);
    }

    let pct_active = monitor.usage_series("fixw", "pct-active-sessions", |u| u.pct_active());
    let pct_senders = monitor.usage_series("fixw", "pct-senders", |u| u.pct_senders());

    println!("\nseries summaries:");
    print_summary(&pct_active);
    print_summary(&pct_senders);

    // Split at the transition start (1999-02-01).
    let cut = SimTime::from_ymd(1999, 2, 1);
    let split = |s: &Series| {
        let before = s.window(SimTime(0), cut);
        let after = s.window(cut, SimTime(u64::MAX / 2));
        (before, after)
    };
    let (act_pre, act_post) = split(&pct_active);
    let (snd_pre, snd_post) = split(&pct_senders);
    println!("\nobservations (transition begins 1999-02-01):");
    println!(
        "  % participants that are senders: pre {:.1}% -> post {:.1}%  (paper: clear increase)",
        snd_pre.mean(),
        snd_post.mean()
    );
    println!(
        "  % sessions active: pre {:.1}% -> post {:.1}%  (paper: marginal increase)",
        act_pre.mean(),
        act_post.mean()
    );
    println!(
        "  variance of % active: pre stddev {:.2} -> post stddev {:.2}  (paper: variation decreases considerably)",
        act_pre.stddev(),
        act_post.stddev()
    );
    println!(
        "  sessions visible at FIXW: pre {:.0} -> post {:.0}  (sparse filtering)",
        monitor
            .usage_series("fixw", "s", |u| u.sessions as f64)
            .window(SimTime(0), cut)
            .mean(),
        monitor
            .usage_series("fixw", "s", |u| u.sessions as f64)
            .window(cut, SimTime(u64::MAX / 2))
            .mean()
    );

    let mut graph =
        Graph::new("Figure 6: % active sessions (left series) and % senders (right series)");
    graph
        .overlay(pct_active.clone())
        .overlay(pct_senders.clone());
    println!("\n{}", graph.render(100, 16));
    if csv {
        let mut g = Graph::new("fig6");
        g.overlay(pct_active).overlay(pct_senders);
        println!("{}", g.to_csv());
    }
}
