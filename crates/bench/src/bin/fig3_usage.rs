//! Figure 3 — Session and participant statistics at FIXW over the
//! evaluation window: total sessions, total participants, active sessions
//! and senders versus time.
//!
//! Paper shape to reproduce: counts are low (hundreds, not thousands),
//! participation is scanty, variation is high (short-lived experimental
//! session storms), and active sessions/senders are a small, much flatter
//! subset. Run with `--csv` to dump the raw series.

use mantra_bench::{banner, drive_until, fast_mode, monitor_for, print_summary};
use mantra_core::output::Graph;
use mantra_net::SimDuration;
use mantra_sim::Scenario;

fn main() {
    banner(
        "Figure 3",
        "sessions / participants / active sessions / senders at FIXW",
    );
    let csv = std::env::args().any(|a| a == "--csv");
    let mut sc = Scenario::fixw_six_months_with(1998, mantra_bench::paper_tick());
    let mut monitor = monitor_for(&sc);
    let end = if fast_mode() {
        sc.sim.clock + SimDuration::days(10)
    } else {
        sc.sim.end_time()
    };
    let cycles = drive_until(&mut sc, &mut monitor, end);
    println!("cycles: {cycles} (interval {})", monitor.cfg.interval);

    let sessions = monitor.usage_series("fixw", "sessions", |u| u.sessions as f64);
    let participants = monitor.usage_series("fixw", "participants", |u| u.participants as f64);
    let active = monitor.usage_series("fixw", "active-sessions", |u| u.active_sessions as f64);
    let senders = monitor.usage_series("fixw", "senders", |u| u.senders as f64);

    println!("\nseries summaries:");
    for s in [&sessions, &participants, &active, &senders] {
        print_summary(s);
    }

    // The paper's qualitative observations, checked quantitatively.
    println!("\nobservations:");
    let cv = sessions.stddev() / sessions.mean().max(1e-9);
    println!("  variation coefficient of #sessions: {cv:.2} (paper: high variation)");
    println!(
        "  active/total sessions: {:.1}% (paper: wide gap — most sessions carry no data)",
        100.0 * active.mean() / sessions.mean().max(1e-9)
    );
    println!(
        "  senders/participants: {:.1}% (paper: participation scanty, few senders)",
        100.0 * senders.mean() / participants.mean().max(1e-9)
    );
    if let Some((t, v)) = sessions.max() {
        println!("  session-count peak: {v:.0} at {t} (storms push past 500)");
    }

    let mut graph = Graph::new("Figure 3: usage at FIXW");
    graph
        .overlay(sessions.clone())
        .overlay(participants.clone())
        .overlay(active.clone())
        .overlay(senders.clone());
    println!("\n{}", graph.render(100, 20));
    if csv {
        println!("{}", graph.to_csv());
    }
}
