//! Figure 4 — Session densities at FIXW over time.
//!
//! Paper shape to reproduce: average density is small; spikes in the
//! number of sessions coincide with *dips* in average density (storms of
//! single-member sessions), while participant surges coincide with density
//! *rises* (audiences joining existing popular sessions); the early-
//! December peak is the 43rd IETF. Also checks the in-text claims:
//! ≥85 % single-member share whenever #sessions > 500, and ≥65 % of
//! sessions with ≤2 participants.

use mantra_bench::{banner, drive_until, fast_mode, monitor_for, print_summary};
use mantra_core::output::Graph;
use mantra_net::{SimDuration, SimTime};
use mantra_sim::Scenario;

fn main() {
    banner("Figure 4", "average session density at FIXW");
    let csv = std::env::args().any(|a| a == "--csv");
    let mut sc = Scenario::fixw_six_months_with(1998, mantra_bench::paper_tick());
    let mut monitor = monitor_for(&sc);
    let end = if fast_mode() {
        sc.sim.clock + SimDuration::days(10)
    } else {
        sc.sim.end_time()
    };
    drive_until(&mut sc, &mut monitor, end);

    let density = monitor.usage_series("fixw", "avg-density", |u| u.avg_density);
    let sessions = monitor.usage_series("fixw", "sessions", |u| u.sessions as f64);
    let single = monitor.usage_series("fixw", "single-member-frac", |u| u.single_member_fraction);
    let le2 = monitor.usage_series("fixw", "le2-frac", |u| u.le2_density_fraction);
    let top6 = monitor.usage_series("fixw", "top6pct-share", |u| u.top6pct_participant_share);

    println!("\nseries summaries:");
    for s in [&density, &sessions, &single, &le2, &top6] {
        print_summary(s);
    }

    // In-text claim T1: when #sessions > 500, ≥85% are single-member.
    let mut storm_points = 0;
    let mut storm_single_ok = 0;
    for ((_, n), (_, frac)) in sessions.points.iter().zip(single.points.iter()) {
        if *n > 500.0 {
            storm_points += 1;
            if *frac >= 0.85 {
                storm_single_ok += 1;
            }
        }
    }
    println!("\nobservations:");
    println!(
        "  T1 storm snapshots (>500 sessions): {storm_points}, of which {storm_single_ok} have >=85% single-member"
    );
    // In-text claim T2: ≥65% of sessions have ≤2 participants.
    println!(
        "  T2 mean fraction of sessions with <=2 participants: {:.1}% (paper: >65%)",
        100.0 * le2.mean()
    );
    println!(
        "  T2' mean share of participants in densest 6% of sessions: {:.1}% (paper: ~80% in several data sets)",
        100.0 * top6.mean()
    );
    // Spike/dip anti-correlation between #sessions and density.
    let corr = correlation(
        &sessions.points.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
        &density.points.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
    );
    println!(
        "  corr(#sessions, avg density) = {corr:.2} (paper: spikes in sessions dip density => negative)"
    );
    if !fast_mode() {
        // The IETF peak: density maximum in the first week of December.
        if let Some((t, v)) = density
            .window(
                SimTime::from_ymd(1998, 12, 5),
                SimTime::from_ymd(1998, 12, 14),
            )
            .max()
        {
            println!("  early-December density peak: {v:.2} at {t} (43rd IETF)");
        }
    }

    let mut graph = Graph::new("Figure 4: average session density at FIXW");
    graph.overlay(density.clone());
    println!("\n{}", graph.render(100, 16));
    if csv {
        let mut g = Graph::new("fig4");
        g.overlay(density).overlay(sessions);
        println!("{}", g.to_csv());
    }
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().take(n).sum::<f64>() / n as f64;
    let mb = b.iter().take(n).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma).powi(2);
        vb += (b[i] - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}
