//! Figure 9 — Unicast route injection into the mrouted route table:
//! one day at the UCSB router, 1998-10-14.
//!
//! Paper shape to reproduce: a flat route count all day, a sharp spike at
//! ~14:00 when unicast routes leak into the DVMRP table, recovery when
//! the leak is fixed. On top of regenerating the plot, this binary runs
//! Mantra's anomaly detectors over the same data and reports the
//! automated diagnosis (spike + injection signature with the culprit
//! gateway), which the paper's authors did by off-line analysis.

use mantra_bench::{banner, drive_until, monitor_for, print_summary};
use mantra_core::anomaly::AnomalyKind;
use mantra_core::output::Graph;
use mantra_sim::Scenario;

fn main() {
    banner(
        "Figure 9",
        "unicast route injection at the UCSB mrouted, 1998-10-14",
    );
    let csv = std::env::args().any(|a| a == "--csv");
    // One day is cheap; fast mode changes nothing here.
    let mut sc = Scenario::ucsb_injection_day(1998);
    let mut monitor = monitor_for(&sc);
    let end = sc.sim.end_time();
    drive_until(&mut sc, &mut monitor, end);

    let name = monitor.cfg.routers[0].clone();
    let routes = monitor.route_series(&name, "ucsb-dvmrp-routes", |r| r.dvmrp_reachable as f64);
    println!("\nseries summary:");
    print_summary(&routes);

    println!("\nanomaly report:");
    let mut spike_seen = false;
    let mut injection_seen = false;
    for a in &monitor.anomalies {
        match &a.kind {
            AnomalyKind::Spike { value, baseline } => {
                spike_seen = true;
                println!(
                    "  {} SPIKE: {} routes (baseline {:.0}) at hour {:.1}",
                    a.at,
                    value,
                    baseline,
                    a.at.hour_of_day()
                );
            }
            AnomalyKind::Crash { value, baseline } => {
                println!(
                    "  {} recovery/crash: {} routes (baseline {:.0})",
                    a.at, value, baseline
                );
            }
            AnomalyKind::RouteInjection {
                new_routes,
                gateway,
                gateway_share,
            } => {
                injection_seen = true;
                println!(
                    "  {} ROUTE INJECTION: {} new routes, {:.0}% via gateway {}",
                    a.at,
                    new_routes,
                    100.0 * gateway_share,
                    gateway
                        .map(|g| g.to_string())
                        .unwrap_or_else(|| "<direct>".into()),
                );
            }
            AnomalyKind::Inconsistency { peer, similarity } => {
                println!("  {} inconsistency vs {peer}: {similarity:.2}", a.at);
            }
        }
    }
    println!(
        "\nautomated diagnosis: spike detected = {spike_seen}, injection signature = {injection_seen}"
    );
    println!(
        "(paper: detected by eye at ~1400 hours, diagnosed off-line as unicast route injection)"
    );

    let mut graph = Graph::new("Figure 9: DVMRP routes at UCSB, 1998-10-14 (x = hour of day)");
    graph.overlay(routes.clone());
    println!("\n{}", graph.render(100, 16));
    if csv {
        let mut g = Graph::new("fig9");
        g.overlay(routes);
        println!("{}", g.to_csv());
    }
}
