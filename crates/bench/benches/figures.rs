//! Criterion benches: one group per paper figure.
//!
//! Each group benchmarks the pipeline that regenerates its figure —
//! scenario stepping, collection, parsing and statistics — on a fixed,
//! pre-warmed window, so `cargo bench` measures the reproduction machinery
//! itself (the full-length series come from the `figN_*` binaries; see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mantra_bench::{drive_for, monitor_for};
use mantra_core::collector::SimAccess;
use mantra_core::processor::process;
use mantra_core::stats::{ConsistencyReport, UsageStats};
use mantra_core::{Monitor, MonitorConfig};
use mantra_net::rate::SENDER_THRESHOLD;
use mantra_net::SimDuration;
use mantra_router_cli::TableKind;
use mantra_sim::Scenario;

/// A warmed-up usage scenario shared by the usage-figure benches. Twelve
/// simulated hours is enough for tables to be representative while keeping
/// bench setup cheap on small machines.
fn warmed_usage_scenario() -> (Scenario, Monitor) {
    let mut sc = Scenario::fixw_six_months(42);
    let mut monitor = monitor_for(&sc);
    drive_for(&mut sc, &mut monitor, SimDuration::hours(12));
    (sc, monitor)
}

/// Figure 3 pipeline: one full monitoring cycle (capture + parse + stats)
/// against both collection points.
fn fig3_usage(c: &mut Criterion) {
    let (mut sc, mut monitor) = warmed_usage_scenario();
    c.bench_function("fig3_usage_cycle", |b| {
        b.iter(|| {
            let next = sc.sim.clock + monitor.cfg.interval;
            sc.sim.advance_to(next);
            let mut access = SimAccess::new(&sc.sim);
            black_box(monitor.run_cycle(&mut access, next));
        })
    });
}

/// Figure 4 analysis: density statistics over a snapshot.
fn fig4_density(c: &mut Criterion) {
    let (sc, monitor) = warmed_usage_scenario();
    let tables = monitor.latest("fixw").unwrap().clone();
    drop(sc);
    c.bench_function("fig4_density_stats", |b| {
        b.iter(|| black_box(UsageStats::from_tables(&tables, SENDER_THRESHOLD)))
    });
}

/// Figure 5 analysis: bandwidth + savings model over a snapshot.
fn fig5_bandwidth(c: &mut Criterion) {
    let (sc, monitor) = warmed_usage_scenario();
    let tables = monitor.latest("fixw").unwrap().clone();
    drop(sc);
    c.bench_function("fig5_bandwidth_model", |b| {
        b.iter(|| {
            let u = UsageStats::from_tables(&tables, SENDER_THRESHOLD);
            black_box((u.total_bandwidth, u.bandwidth_saved_multiple))
        })
    });
}

/// Figure 6: classification percentage extraction over a history window.
fn fig6_percent_active(c: &mut Criterion) {
    let (sc, monitor) = warmed_usage_scenario();
    drop(sc);
    c.bench_function("fig6_percent_series", |b| {
        b.iter(|| {
            let a = monitor.usage_series("fixw", "pct-active", |u| u.pct_active());
            let s = monitor.usage_series("fixw", "pct-senders", |u| u.pct_senders());
            black_box((a.mean(), a.stddev(), s.mean(), s.stddev()))
        })
    });
}

/// Figure 7: DVMRP route-table capture + parse + consistency comparison.
fn fig7_dvmrp_routes(c: &mut Criterion) {
    let (sc, monitor) = warmed_usage_scenario();
    let a = monitor.latest("fixw").unwrap().clone();
    let b2 = monitor.latest("ucsb-gw").unwrap().clone();
    c.bench_function("fig7_route_capture_parse", |b| {
        b.iter(|| {
            let raw = mantra_router_cli::render(
                &sc.sim.net,
                sc.fixw,
                TableKind::DvmrpRoutes,
                sc.sim.clock,
            );
            let cap = mantra_core::collector::preprocess(
                "fixw",
                TableKind::DvmrpRoutes,
                &raw,
                sc.sim.clock,
            );
            black_box(process(&[cap]))
        })
    });
    c.bench_function("fig7_consistency", |b| {
        b.iter(|| black_box(ConsistencyReport::between(&a, &b2)))
    });
}

/// Figure 8: a long-horizon coarse-tick simulation step.
fn fig8_dvmrp_longterm(c: &mut Criterion) {
    let mut sc = Scenario::dvmrp_two_years(42);
    let mut monitor = monitor_for(&sc);
    drive_for(&mut sc, &mut monitor, SimDuration::days(7));
    c.bench_function("fig8_longterm_cycle", |b| {
        b.iter(|| {
            let next = sc.sim.clock + monitor.cfg.interval;
            sc.sim.advance_to(next);
            let mut access = SimAccess::new(&sc.sim);
            black_box(monitor.run_cycle(&mut access, next));
        })
    });
}

/// Figure 9: injection-day cycle including spike/injection detection.
fn fig9_route_injection(c: &mut Criterion) {
    let mut sc = Scenario::ucsb_injection_day(42);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive_for(&mut sc, &mut monitor, SimDuration::hours(13));
    // Trigger the injection so the benched cycles include detector work on
    // the inflated table.
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(2));
    c.bench_function("fig9_injection_cycle", |b| {
        b.iter(|| {
            let next = sc.sim.clock + monitor.cfg.interval;
            sc.sim.advance_to(next);
            let mut access = SimAccess::new(&sc.sim);
            black_box(monitor.run_cycle(&mut access, next));
        })
    });
}

/// Figure 2 (the output interface): table and graph operations.
fn fig2_output_ops(c: &mut Criterion) {
    let (sc, monitor) = warmed_usage_scenario();
    drop(sc);
    c.bench_function("fig2_table_sort_search", |b| {
        b.iter(|| {
            let mut t = monitor.busiest_sessions("fixw", 1_000);
            t.sort_by("density", false);
            black_box(t.search("group", "224.2"))
        })
    });
    c.bench_function("fig2_graph_render", |b| {
        let graph = monitor.usage_graph("fixw");
        b.iter(|| black_box(graph.render(100, 20)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = fig2_output_ops, fig3_usage, fig4_density, fig5_bandwidth,
              fig6_percent_active, fig7_dvmrp_routes, fig8_dvmrp_longterm,
              fig9_route_injection
}
criterion_main!(figures);
