//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_logger_*` — full-snapshot vs delta vs delta+redundancy
//!   storage cost (the paper's two conservation techniques),
//! * `ablation_threshold_*` — sender-classification sweep around the
//!   paper's 4 kbps choice,
//! * `ablation_interval_*` — collection-interval sweep (cost side; the
//!   fidelity side lives in the figure binaries),
//! * `ablation_aggregate_*` — sequential vs rayon multi-router
//!   collection, the paper's announced enhancement,
//! * `ablation_interning_*` — BTreeMap-keyed reference delta diffing vs
//!   the interned [`TableStore`] merge-join on a 50-router × 96-cycle
//!   day of snapshots,
//! * `ablation_archive_*` — memory vs on-disk archive backends (MANTRARC
//!   v1 JSON payloads vs v2 id-keyed records): write a 50-router ×
//!   96-cycle day through each, stream it back, and compare bytes on
//!   disk,
//! * `ablation_log_*` — Log-stage on-path wall time with fsync-per-record
//!   persistence, synchronous writes vs the per-router writer thread,
//! * `ablation_fleet_*` — one sharded fleet-monitor cycle end-to-end at
//!   three fleet sizes (50 → 500 → 2000 routers, 4 shards), over the
//!   fleet-scale scenario with every router monitored,
//! * `ablation_churn_*` — the same fleet cycle under a churning topology
//!   (calm / flappy / partition schedules vs a static world): what
//!   dynamic membership costs, with a sharded-vs-single exactness
//!   assertion under churn,
//! * `ablation_parse_*` — the zero-copy span/byte Parse stage vs the
//!   kept string parser over a 500-router fleet capture corpus, with a
//!   bytes/sec accounting line and a strict zero-copy-wins assertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use mantra_bench::{drive_for, monitor_for};
use mantra_core::aggregate::{collect_aggregate, collect_aggregate_sequential};
use mantra_core::archive::{
    BackpressureMode, FileBackend, FileBackendV2, SyncPolicy, ThreadedBackend, WriterConfig,
};
use mantra_core::collector::{preprocess_bytes, Capture, RouterAccess, SimAccess};
use mantra_core::logger::{diff_reference, diff_with, SnapshotParts, TableDelta, TableLog};
use mantra_core::processor::{process, reference};
use mantra_core::stats::{RouteStats, UsageStats};
use mantra_core::stats_stream::IncrementalStats;
use mantra_core::store::TableStore;
use mantra_core::tables::{LearnedFrom, PairRow, RouteRow, Tables};
use mantra_core::{FleetMonitor, MonitorConfig};
use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimDuration, SimTime};
use mantra_router_cli::TableKind;
use mantra_sim::{ChurnProfile, Scenario};

/// A short snapshot stream from a live scenario.
fn snapshot_stream(n: usize) -> Vec<Tables> {
    let mut sc = Scenario::fixw_six_months(7);
    let mut monitor = monitor_for(&sc);
    drive_for(&mut sc, &mut monitor, SimDuration::mins(15 * n as u64));
    monitor.log("fixw").expect("log exists").replay()
}

fn ablation_logger(c: &mut Criterion) {
    let stream = snapshot_stream(24);
    let mut group = c.benchmark_group("ablation_logger");
    group.sample_size(10);
    // Cost of appending under each strategy; the storage ratio is printed
    // once since criterion can't chart it.
    group.bench_function("full_snapshots", |b| {
        b.iter(|| {
            let mut log = TableLog::new(1); // full every time
            for s in &stream {
                log.append(s);
            }
            black_box(log.bytes_stored)
        })
    });
    group.bench_function("delta_encoded", |b| {
        b.iter(|| {
            let mut log = TableLog::new(96);
            for s in &stream {
                log.append(s);
            }
            black_box(log.bytes_stored)
        })
    });
    group.bench_function("serialize_parts_only", |b| {
        b.iter(|| {
            // Redundancy elimination alone: store the non-derivable parts
            // in full each cycle.
            let total: usize = stream
                .iter()
                .map(|s| {
                    serde_json::to_string(&SnapshotParts::from_tables(s))
                        .map(|j| j.len())
                        .unwrap_or(0)
                })
                .sum();
            black_box(total)
        })
    });
    group.finish();

    // Report the storage ratios once, outside measurement.
    let mut full = TableLog::new(1);
    let mut delta = TableLog::new(96);
    for s in &stream {
        full.append(s);
        delta.append(s);
    }
    println!(
        "[ablation_logger] full={}B delta={}B savings={:.1}% (baseline {}B)",
        full.bytes_stored,
        delta.bytes_stored,
        100.0 * delta.savings_ratio(),
        delta.bytes_full_baseline,
    );
}

fn ablation_threshold(c: &mut Criterion) {
    let stream = snapshot_stream(8);
    let snapshot = stream.last().expect("non-empty").clone();
    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(20);
    for kbps in [1u64, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(kbps), &kbps, |b, kbps| {
            let th = BitRate::from_kbps(*kbps);
            b.iter(|| black_box(UsageStats::from_tables(&snapshot, th)))
        });
    }
    group.finish();
    // Classification sensitivity, printed once.
    for kbps in [1u64, 2, 4, 8, 16] {
        let u = UsageStats::from_tables(&snapshot, BitRate::from_kbps(kbps));
        println!(
            "[ablation_threshold] {kbps:>2} kbps: senders={} active_sessions={}",
            u.senders, u.active_sessions
        );
    }
}

fn ablation_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interval");
    group.sample_size(10);
    for mins in [5u64, 15, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(mins), &mins, |b, mins| {
            b.iter(|| {
                let mut sc = Scenario::transition_snapshot(13, 0.3);
                let mut monitor = monitor_for(&sc);
                monitor.cfg.interval = SimDuration::mins(*mins);
                // Equal simulated horizon; finer intervals cost more cycles.
                drive_for(&mut sc, &mut monitor, SimDuration::hours(3));
                black_box(monitor.cycles())
            })
        });
    }
    group.finish();
}

fn ablation_aggregate(c: &mut Criterion) {
    let mut sc = Scenario::transition_snapshot(17, 0.5);
    let mut monitor = monitor_for(&sc);
    drive_for(&mut sc, &mut monitor, SimDuration::hours(12));
    // Aggregate across every border router in the topology, not just the
    // two paper collection points — the multi-router scenario the paper's
    // conclusion argues for.
    let routers: Vec<String> = sc
        .sim
        .net
        .topo
        .domains()
        .iter()
        .filter_map(|d| d.border)
        .map(|r| sc.sim.net.topo.router(r).name.clone())
        .collect();
    let now = sc.sim.clock;
    let mut group = c.benchmark_group("ablation_aggregate");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(collect_aggregate_sequential(
                &sc.sim,
                &routers,
                &TableKind::ALL,
                now,
            ))
        })
    });
    group.bench_function("rayon_parallel", |b| {
        b.iter(|| black_box(collect_aggregate(&sc.sim, &routers, &TableKind::ALL, now)))
    });
    group.finish();
}

/// Deterministic synthetic snapshot streams: `routers` routers, `cycles`
/// 15-minute cycles each, with slow pair churn and route flapping — the
/// shape of a day of multi-router collection without simulator cost.
fn synthetic_streams(routers: usize, cycles: usize) -> Vec<Vec<SnapshotParts>> {
    synthetic_streams_with_churn(routers, cycles, 1)
}

/// Like [`synthetic_streams`], but row contents only change every `calm`
/// cycles: with `calm > 1` most consecutive snapshots diff to small (often
/// empty) deltas, the shape of a quiet production day.
fn synthetic_streams_with_churn(
    routers: usize,
    cycles: usize,
    calm: usize,
) -> Vec<Vec<SnapshotParts>> {
    (0..routers)
        .map(|r| {
            (0..cycles)
                .map(|c| {
                    let v = (c / calm) as u32;
                    let at = SimTime(SimTime::from_ymd(1999, 3, 1).as_secs() + c as u64 * 900);
                    let mut t = Tables::new(format!("r{r}"), at);
                    for k in 0..40u32 {
                        t.add_pair(PairRow {
                            source: Ip::new(10, r as u8, 0, (k % 24) as u8 + 1),
                            group: GroupAddr::from_index((k + v / 8) % 64),
                            current_bw: BitRate::from_bps(
                                1_000 + ((u64::from(v) * 37 + k as u64 * 13) % 7) * 500,
                            ),
                            avg_bw: BitRate::from_bps(0),
                            forwarding: !(k + v).is_multiple_of(5),
                            learned_from: LearnedFrom::Dvmrp,
                        });
                    }
                    for k in 0..60u32 {
                        t.add_route(RouteRow {
                            prefix: Prefix::new(Ip::new(128, (k % 200) as u8, 0, 0), 16).unwrap(),
                            next_hop: Some(Ip::new(10, r as u8, 0, 1)),
                            metric: 1 + (k + v) % 30,
                            uptime: None,
                            reachable: !(k + v / 4).is_multiple_of(11),
                            learned_from: LearnedFrom::Dvmrp,
                        });
                    }
                    SnapshotParts::from_tables(&t)
                })
                .collect()
        })
        .collect()
}

fn ablation_interning(c: &mut Criterion) {
    // One day of 15-minute cycles across 50 routers, diffed consecutively
    // — the monitor's hot loop, isolated.
    let streams = synthetic_streams(50, 96);
    let mut group = c.benchmark_group("ablation_interning");
    group.sample_size(10);
    group.bench_function("btreemap_reference", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for stream in &streams {
                for w in stream.windows(2) {
                    let d = diff_reference(&w[0], &w[1]);
                    total += d.pair_upserts.len() + d.route_upserts.len();
                }
            }
            black_box(total)
        })
    });
    group.bench_function("interned_store", |b| {
        b.iter(|| {
            // One store for the whole fleet, as the monitor holds it: keys
            // hash once on first sight, then every diff is a merge-join
            // over dense ids.
            let mut store = TableStore::default();
            let mut total = 0usize;
            for stream in &streams {
                for w in stream.windows(2) {
                    let d = diff_with(&mut store, &w[0], &w[1]);
                    total += d.pair_upserts.len() + d.route_upserts.len();
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

fn ablation_archive(c: &mut Criterion) {
    // A 50-router day pushed through the storage path: append every cycle
    // to a delta log on each backend, then stream the whole archive back
    // with `replay_iter`. Calm churn (rows change every 8 cycles) keeps
    // the record mix delta-heavy, as on a quiet production day.
    let streams: Vec<Vec<Tables>> = synthetic_streams_with_churn(50, 96, 8)
        .into_iter()
        .map(|stream| stream.iter().map(SnapshotParts::rebuild).collect())
        .collect();
    let dir = std::env::temp_dir().join(format!("mantra-bench-archive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench tmp dir");
    let mut group = c.benchmark_group("ablation_archive");
    group.sample_size(10);
    group.bench_function("memory_write_replay", |b| {
        b.iter(|| {
            let mut snapshots = 0usize;
            for stream in &streams {
                let mut log = TableLog::new(96);
                for s in stream {
                    log.append(s);
                }
                snapshots += log.replay_iter().filter(|t| t.is_ok()).count();
            }
            black_box(snapshots)
        })
    });
    group.bench_function("file_v1_write_replay", |b| {
        b.iter(|| {
            let mut snapshots = 0usize;
            for (r, stream) in streams.iter().enumerate() {
                let path = dir.join(format!("r{r}.marc"));
                let backend = FileBackend::create(&path).expect("create archive");
                let mut log = TableLog::with_backend(Box::new(backend), 96);
                for s in stream {
                    log.append(s);
                }
                assert!(log.backend_error().is_none());
                snapshots += log.replay_iter().filter(|t| t.is_ok()).count();
            }
            black_box(snapshots)
        })
    });
    group.bench_function("file_v2_write_replay", |b| {
        b.iter(|| {
            let mut snapshots = 0usize;
            for (r, stream) in streams.iter().enumerate() {
                let path = dir.join(format!("r{r}-v2.marc"));
                let backend = FileBackendV2::create(&path).expect("create archive");
                let mut log = TableLog::with_backend(Box::new(backend), 96);
                for s in stream {
                    log.append(s);
                }
                assert!(log.backend_error().is_none());
                snapshots += log.replay_iter().filter(|t| t.is_ok()).count();
            }
            black_box(snapshots)
        })
    });
    group.finish();

    // Bytes-on-disk across the whole fleet-day, printed once: the v2
    // id-keyed encoding must land strictly below v1's JSON payloads.
    let (mut mem_b, mut v1_b, mut v2_b) = (0u64, 0u64, 0u64);
    for (r, stream) in streams.iter().enumerate() {
        let mut mem = TableLog::new(96);
        let v1 = FileBackend::create(dir.join(format!("acct-{r}-v1.marc"))).expect("v1");
        let mut v1 = TableLog::with_backend(Box::new(v1), 96);
        let v2 = FileBackendV2::create(dir.join(format!("acct-{r}-v2.marc"))).expect("v2");
        let mut v2 = TableLog::with_backend(Box::new(v2), 96);
        for s in stream {
            mem.append(s);
            v1.append(s);
            v2.append(s);
        }
        mem_b += mem.bytes_stored as u64;
        v1_b += v1.archive_stats().bytes;
        v2_b += v2.archive_stats().bytes;
    }
    assert!(
        v2_b < v1_b,
        "v2 must be smaller on disk: v2={v2_b}B v1={v1_b}B"
    );
    println!(
        "[ablation_archive] fleet-day on disk: json-payload={mem_b}B v1-frames={v1_b}B \
         v2-frames={v2_b}B (v2/v1 = {:.1}%)",
        100.0 * v2_b as f64 / v1_b as f64
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn ablation_log(c: &mut Criterion) {
    // The Log stage's on-path cost under the strictest durability
    // setting (fsync every record): the synchronous writer charges
    // encode + write + fsync to the collection path on every append,
    // the threaded writer charges an enqueue and pays the disk off-path.
    // Criterion times the whole fleet-day including the threaded
    // variant's drain barrier, so total I/O is identical; the printed
    // accounting line isolates the on-path share — what collection
    // actually waits on.
    let streams: Vec<Vec<Tables>> = synthetic_streams_with_churn(50, 96, 8)
        .into_iter()
        .map(|stream| stream.iter().map(SnapshotParts::rebuild).collect())
        .collect();
    let dir = std::env::temp_dir().join(format!("mantra-bench-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench tmp dir");
    let writer = WriterConfig {
        capacity: 64,
        mode: BackpressureMode::Block,
    };
    let mut group = c.benchmark_group("ablation_log");
    group.sample_size(10);
    group.bench_function("serial_fsync_each", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (r, stream) in streams.iter().enumerate() {
                let mut backend =
                    FileBackendV2::create(dir.join(format!("s{r}.marc"))).expect("create archive");
                backend.sync = SyncPolicy::every_records(1);
                let mut log = TableLog::with_backend(Box::new(backend), 96);
                for s in stream {
                    log.append(s);
                }
                assert!(log.backend_error().is_none());
                total += log.len();
            }
            black_box(total)
        })
    });
    group.bench_function("threaded_block", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (r, stream) in streams.iter().enumerate() {
                let mut backend =
                    FileBackendV2::create(dir.join(format!("t{r}.marc"))).expect("create archive");
                backend.sync = SyncPolicy::every_records(1);
                let mut log = TableLog::with_backend(
                    Box::new(ThreadedBackend::spawn(Box::new(backend), writer)),
                    96,
                );
                for s in stream {
                    log.append(s);
                }
                // Drain barrier: the writer thread's I/O is paid inside
                // the timed region, keeping the totals comparable.
                total += log.len();
                assert!(log.backend_error().is_none());
            }
            black_box(total)
        })
    });
    group.finish();

    // On-path accounting, printed once: time only the append loops, with
    // the threaded variant's drain left outside the measured window.
    let (mut serial_ns, mut threaded_ns, mut appends) = (0u128, 0u128, 0usize);
    for (r, stream) in streams.iter().enumerate() {
        let mut backend =
            FileBackendV2::create(dir.join(format!("acct-{r}-serial.marc"))).expect("serial");
        backend.sync = SyncPolicy::every_records(1);
        let mut log = TableLog::with_backend(Box::new(backend), 96);
        let t0 = Instant::now();
        for s in stream {
            log.append(s);
        }
        serial_ns += t0.elapsed().as_nanos();
        assert!(log.backend_error().is_none());

        let mut backend =
            FileBackendV2::create(dir.join(format!("acct-{r}-threaded.marc"))).expect("threaded");
        backend.sync = SyncPolicy::every_records(1);
        let mut log = TableLog::with_backend(
            Box::new(ThreadedBackend::spawn(Box::new(backend), writer)),
            96,
        );
        let t0 = Instant::now();
        for s in stream {
            log.append(s);
        }
        threaded_ns += t0.elapsed().as_nanos();
        appends += stream.len();
        drop(log); // shutdown drain happens off the measured path
    }
    assert!(
        threaded_ns < serial_ns,
        "threaded on-path time must beat synchronous fsync-per-record: \
         threaded={threaded_ns}ns serial={serial_ns}ns"
    );
    println!(
        "[ablation_log] on-path Log-stage time over {appends} appends: \
         serial-fsync-each={:.1}ms threaded-block={:.1}ms ({:.1}% of serial)",
        serial_ns as f64 / 1e6,
        threaded_ns as f64 / 1e6,
        100.0 * threaded_ns as f64 / serial_ns as f64
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn ablation_streaming(c: &mut Criterion) {
    // The Analyse stage's statistics cost, isolated: rebuilding
    // UsageStats/RouteStats from the full tables every cycle vs folding
    // the deltas the Log stage already computed into IncrementalStats.
    // Stormy churn (every row changes every cycle) vs calm (rows change
    // every 8th cycle): the rebuild's cost tracks table size and is
    // indifferent to churn; the fold's cost tracks the delta.
    let threshold = mantra_net::rate::SENDER_THRESHOLD;
    let mut group = c.benchmark_group("ablation_streaming");
    group.sample_size(10);
    for (label, calm) in [("stormy", 1usize), ("calm", 8)] {
        let parts = synthetic_streams_with_churn(50, 96, calm);
        let streams: Vec<Vec<Tables>> = parts
            .iter()
            .map(|stream| stream.iter().map(SnapshotParts::rebuild).collect())
            .collect();
        // Deltas precomputed outside the timed region: in the pipeline
        // the Log stage has already paid for them.
        let mut store = TableStore::default();
        let deltas: Vec<Vec<TableDelta>> = parts
            .iter()
            .map(|stream| {
                stream
                    .windows(2)
                    .map(|w| diff_with(&mut store, &w[0], &w[1]))
                    .collect()
            })
            .collect();
        group.bench_function(format!("full_rebuild_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for stream in &streams {
                    for t in stream {
                        let u = UsageStats::from_tables(t, threshold);
                        let r = RouteStats::from_tables(t);
                        acc += u.sessions + r.dvmrp_total;
                    }
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("incremental_fold_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for (stream, ds) in streams.iter().zip(&deltas) {
                    let mut inc = IncrementalStats::default();
                    inc.reseed(&stream[0], threshold);
                    acc += inc.usage().sessions + inc.route_stats().dvmrp_total;
                    for d in ds {
                        inc.fold(d);
                        acc += inc.usage().sessions + inc.route_stats().dvmrp_total;
                    }
                }
                black_box(acc)
            })
        });
        // Churn volume per variant, printed once for the record.
        let rows: usize = deltas
            .iter()
            .flatten()
            .map(|d| {
                d.pair_upserts.len()
                    + d.pair_removals.len()
                    + d.route_upserts.len()
                    + d.route_removals.len()
            })
            .sum();
        let cycles: usize = deltas.iter().map(Vec::len).sum();
        println!(
            "[ablation_streaming] {label}: {:.1} changed rows/delta over {cycles} deltas",
            rows as f64 / cycles.max(1) as f64
        );
    }
    group.finish();
}

/// A warmed fleet over the fleet-scale scenario, ready to cycle.
fn fleet_for(seed: u64, target: usize, shards: usize) -> (Scenario, FleetMonitor) {
    let sc = Scenario::fleet_snapshot(seed, target, 0.5);
    let routers: Vec<String> = sc
        .sim
        .monitored
        .iter()
        .map(|id| sc.sim.net.topo.router(*id).name.clone())
        .collect();
    let fleet = FleetMonitor::new(
        MonitorConfig {
            routers,
            interval: sc.sim.tick(),
            ..MonitorConfig::default()
        },
        shards,
    );
    (sc, fleet)
}

fn ablation_churn(c: &mut Criterion) {
    // What a churning world costs per fleet cycle: the same 200-router,
    // 4-shard cycle as `ablation_fleet`, under no churn and under each
    // profile. The dynamic-membership machinery — reconvergence after
    // neighbor loss, staleness tracking, seal-on-retire, rejoin — all
    // sits on this path.
    let mut group = c.benchmark_group("ablation_churn");
    group.sample_size(10);
    let profiles: [(&str, Option<ChurnProfile>); 4] = [
        ("static", None),
        ("calm", Some(ChurnProfile::Calm)),
        ("flappy", Some(ChurnProfile::Flappy)),
        ("partition", Some(ChurnProfile::Partition)),
    ];
    for (name, profile) in profiles {
        group.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, profile| {
            let (mut sc, mut fleet) = fleet_for(23, 200, 4);
            if let Some(p) = profile {
                sc.with_churn(*p, 23);
            }
            let next = sc.sim.clock + fleet.cfg.interval;
            sc.sim.advance_to(next);
            fleet.run_cycle(&sc.sim, next);
            b.iter(|| {
                let next = sc.sim.clock + fleet.cfg.interval;
                sc.sim.advance_to(next);
                black_box(fleet.run_cycle(&sc.sim, next))
            });
        });
    }
    group.finish();

    // The churn exactness claim, asserted on the bench path too: under a
    // flappy schedule, sharded and unsharded runs stay bit-identical.
    let run = |shards: usize| {
        let (mut sc, mut fleet) = fleet_for(23, 50, shards);
        sc.with_churn(ChurnProfile::Flappy, 23);
        for _ in 0..4 {
            let next = sc.sim.clock + fleet.cfg.interval;
            sc.sim.advance_to(next);
            fleet.run_cycle(&sc.sim, next);
        }
        (
            fleet.usage_history().to_vec(),
            fleet.route_history().to_vec(),
            fleet.anomalies.clone(),
        )
    };
    let (u1, r1, a1) = run(1);
    let (u4, r4, a4) = run(4);
    assert_eq!(u1, u4, "churned sharded usage must be bit-identical");
    assert_eq!(r1, r4, "churned sharded route stats must be bit-identical");
    assert_eq!(a1.len(), a4.len(), "churned anomaly stream must match");
    println!(
        "[ablation_churn] flappy schedule, shards 1 vs 4 over 4 cycles: \
         identical global stats ({} usage points, {} anomalies)",
        u1.len(),
        a1.len()
    );
}

fn ablation_fleet(c: &mut Criterion) {
    // The sharded fleet monitor end-to-end: one collection cycle —
    // advance the world one tick, capture every router across 4 shards
    // concurrently, merge through the aggregation tier — at three fleet
    // sizes spanning the scale-out roadmap (50 → 500 → 2000 routers).
    let mut group = c.benchmark_group("ablation_fleet");
    group.sample_size(10);
    for target in [50usize, 500, 2000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(target),
            &target,
            |b, &target| {
                let (mut sc, mut fleet) = fleet_for(23, target, 4);
                // Warm one cycle: steady-state deltas, not the first full
                // snapshots, are what scale-out costs.
                let next = sc.sim.clock + fleet.cfg.interval;
                sc.sim.advance_to(next);
                fleet.run_cycle(&sc.sim, next);
                b.iter(|| {
                    let next = sc.sim.clock + fleet.cfg.interval;
                    sc.sim.advance_to(next);
                    black_box(fleet.run_cycle(&sc.sim, next))
                });
            },
        );
    }
    group.finish();

    // The exactness claim, asserted once on the bench path too: a
    // 4-shard fleet and an unsharded one over identical worlds produce
    // identical global statistics and anomaly streams.
    let run = |shards: usize| {
        let (mut sc, mut fleet) = fleet_for(23, 50, shards);
        for _ in 0..3 {
            let next = sc.sim.clock + fleet.cfg.interval;
            sc.sim.advance_to(next);
            fleet.run_cycle(&sc.sim, next);
        }
        (
            fleet.usage_history().to_vec(),
            fleet.route_history().to_vec(),
            fleet.anomalies.clone(),
        )
    };
    let (u1, r1, a1) = run(1);
    let (u4, r4, a4) = run(4);
    assert_eq!(u1, u4, "sharded usage must be bit-identical");
    assert_eq!(r1, r4, "sharded route stats must be bit-identical");
    assert_eq!(a1.len(), a4.len(), "sharded anomaly stream must match");
    println!(
        "[ablation_fleet] shards 1 vs 4 over 3 cycles: identical global stats \
         ({} participants, {} anomalies)",
        u1.last().map_or(0, |u| u.participants),
        a1.len()
    );
}

fn ablation_report_loss(c: &mut Criterion) {
    // Route-count instability as a function of DVMRP report loss — the
    // mechanism behind Figure 7, quantified. Criterion measures the run
    // cost; the instability metric prints once per level.
    let mut group = c.benchmark_group("ablation_report_loss");
    group.sample_size(10);
    for loss_pct in [0u32, 10, 30] {
        group.bench_with_input(
            BenchmarkId::from_parameter(loss_pct),
            &loss_pct,
            |b, loss_pct| {
                b.iter(|| {
                    let mut sc = Scenario::transition_snapshot(19, 0.0);
                    sc.sim.set_report_loss(f64::from(*loss_pct) / 100.0);
                    let mut monitor = monitor_for(&sc);
                    drive_for(&mut sc, &mut monitor, SimDuration::hours(6));
                    let s = monitor.route_series("fixw", "r", |r| r.dvmrp_reachable as f64);
                    black_box(s.stddev())
                })
            },
        );
    }
    group.finish();
    for loss_pct in [0u32, 5, 10, 20, 30, 50] {
        let mut sc = Scenario::transition_snapshot(19, 0.0);
        sc.sim.set_report_loss(f64::from(loss_pct) / 100.0);
        let mut monitor = monitor_for(&sc);
        drive_for(&mut sc, &mut monitor, SimDuration::hours(6));
        let s = monitor.route_series("fixw", "r", |r| r.dvmrp_reachable as f64);
        println!(
            "[ablation_report_loss] {loss_pct:>2}% loss: route-count mean {:.0} stddev {:.1}",
            s.mean(),
            s.stddev()
        );
    }
}

fn ablation_parse(c: &mut Criterion) {
    // The zero-copy Parse stage vs the kept string parser
    // (`processor::reference`) over a fleet-scale capture corpus: every
    // table of every monitored router in a 500-router world across
    // several collection cycles, preprocessed once (preprocessing is
    // shared) and parsed repeatedly. The reference parser materialises
    // every line as `String` and splits on owned text; the byte parser
    // works on spans of the raw capture buffer.
    let mut sc = Scenario::fleet_snapshot(23, 500, 0.5);
    let routers: Vec<String> = sc
        .sim
        .monitored
        .iter()
        .map(|id| sc.sim.net.topo.router(*id).name.clone())
        .collect();
    let mut corpus: Vec<Vec<Capture>> = Vec::new();
    let mut total_bytes = 0usize;
    for _ in 0..4 {
        let now = sc.sim.clock + sc.sim.tick();
        sc.sim.advance_to(now);
        let mut access = SimAccess::new(&sc.sim);
        for router in &routers {
            let mut batch = Vec::new();
            for kind in TableKind::ALL {
                if let Ok(raw) = access.capture(router, kind, now) {
                    let cap = preprocess_bytes(router, kind, raw.into_bytes(), now);
                    total_bytes += cap.raw_bytes;
                    batch.push(cap);
                }
            }
            corpus.push(batch);
        }
    }

    let mut group = c.benchmark_group("ablation_parse");
    group.sample_size(10);
    group.bench_function("zero_copy", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for batch in &corpus {
                let (_, stats) = process(batch);
                rows += stats.parsed;
            }
            black_box(rows)
        })
    });
    group.bench_function("reference_string", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for batch in &corpus {
                let (_, stats) = reference::process(batch);
                rows += stats.parsed;
            }
            black_box(rows)
        })
    });
    group.finish();

    // Throughput accounting outside the criterion loops, and the claim
    // the refactor stands on: the span parser must beat the string one.
    const PASSES: u32 = 3;
    let timed = |f: &dyn Fn(&[Capture]) -> usize| {
        let t0 = Instant::now();
        let mut rows = 0usize;
        for _ in 0..PASSES {
            for batch in &corpus {
                rows += f(batch);
            }
        }
        (t0.elapsed().as_nanos().max(1), rows)
    };
    let (zc_ns, zc_rows) = timed(&|b| process(b).1.parsed);
    let (rf_ns, rf_rows) = timed(&|b| reference::process(b).1.parsed);
    assert_eq!(zc_rows, rf_rows, "parsers must agree on the corpus");
    let bytes = total_bytes as u64 * u64::from(PASSES);
    let rate = |ns: u128| bytes as f64 / (ns as f64 / 1e9) / 1e6;
    assert!(
        zc_ns < rf_ns,
        "zero-copy parse must beat the string parser: {zc_ns}ns vs {rf_ns}ns"
    );
    println!(
        "[ablation_parse] {} captures, {:.1} MB raw, {} rows/pass: \
         zero-copy={:.1} MB/s reference={:.1} MB/s ({:.2}x)",
        corpus.iter().map(Vec::len).sum::<usize>(),
        total_bytes as f64 / 1e6,
        zc_rows / PASSES as usize,
        rate(zc_ns),
        rate(rf_ns),
        rf_ns as f64 / zc_ns as f64
    );
}

criterion_group! {
    name = ablations;
    config = Criterion::default();
    targets = ablation_logger, ablation_threshold, ablation_interval,
              ablation_aggregate, ablation_interning, ablation_archive,
              ablation_log, ablation_streaming, ablation_fleet,
              ablation_churn, ablation_report_loss, ablation_parse
}
criterion_main!(ablations);
