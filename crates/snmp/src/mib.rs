//! The MIB modules a 1998 multicast router exposed — and the ones it
//! didn't.
//!
//! Implemented (as the period drafts/RFCs defined them, columns reduced to
//! the ones the Merit tools actually read):
//!
//! * MIB-II `system` — sysDescr / sysUpTime / sysName,
//! * `IPMROUTE-STD-MIB` (RFC 2932 draft), `ipMRouteTable` — the multicast
//!   forwarding table with packet/octet **counters** (not rates: deriving
//!   a rate needs two polls, one of SNMP's real operational costs),
//! * the DVMRP MIB draft (experimental subtree), `dvmrpRouteTable`,
//! * `IGMP-STD-MIB` (RFC 2933 draft), `igmpCacheTable`.
//!
//! Deliberately absent, as they were in 1998–99: **any MSDP MIB** ("proper
//! MIBs do not even exist" — the paper), any MBGP multicast RIB view, and
//! a deployed PIM MIB. An SNMP-based monitor therefore cannot see the
//! SA cache or interdomain routing no matter how it polls — the
//! reproduction of the paper's core argument for CLI scraping.

use mantra_net::{RouterId, SimTime};
use mantra_sim::Network;

use crate::agent::Agent;
use crate::oid::Oid;
use crate::types::SnmpValue;

/// `mgmt.mib-2.system`.
pub fn system_base() -> Oid {
    Oid::mib2().child([1])
}

/// `ipMRouteEntry`: `mib-2.83.1.1.2.1`.
pub fn ip_mroute_entry() -> Oid {
    Oid::mib2().child([83, 1, 1, 2, 1])
}

/// `dvmrpRouteEntry` under the experimental DVMRP MIB: `1.3.6.1.3.62.1.3.1`.
pub fn dvmrp_route_entry() -> Oid {
    Oid::experimental().child([62, 1, 3, 1])
}

/// `igmpCacheEntry`: `mib-2.85.1.2.1`.
pub fn igmp_cache_entry() -> Oid {
    Oid::mib2().child([85, 1, 2, 1])
}

/// Columns of `ipMRouteEntry` we populate.
pub mod mroute_columns {
    /// ipMRouteUpstreamNeighbor.
    pub const UPSTREAM: u32 = 4;
    /// ipMRouteInIfIndex.
    pub const IIF: u32 = 5;
    /// ipMRouteUpTime.
    pub const UPTIME: u32 = 6;
    /// ipMRoutePkts.
    pub const PKTS: u32 = 8;
    /// ipMRouteOctets.
    pub const OCTETS: u32 = 10;
}

/// Columns of `dvmrpRouteEntry` we populate.
pub mod dvmrp_columns {
    /// dvmrpRouteUpstreamNeighbor.
    pub const UPSTREAM: u32 = 3;
    /// dvmrpRouteMetric.
    pub const METRIC: u32 = 5;
    /// dvmrpRouteExpiryTime.
    pub const EXPIRY: u32 = 6;
}

/// Rebuilds `agent`'s MIB view from the router's current state.
///
/// Mirrors how real agents worked: the view is a snapshot of the kernel
/// tables at refresh time, with the same staleness properties the paper
/// notes for cached router state.
pub fn refresh_agent(agent: &mut Agent, net: &Network, router: RouterId, now: SimTime) {
    agent.clear();
    let r = net.topo.router(router);

    // system group.
    let sys = system_base();
    let descr = if r.suite.dvmrp && !r.suite.pim_sm {
        "mrouted 3.9-beta3 / SunOS 5.6"
    } else {
        "IOS (tm) 11.2(11)GS multicast border"
    };
    agent.bind(sys.child([1, 0]), SnmpValue::OctetString(descr.into()));
    agent.bind(
        sys.child([3, 0]),
        SnmpValue::TimeTicks(now.as_secs().saturating_mul(100) % u64::from(u32::MAX)),
    );
    agent.bind(sys.child([5, 0]), SnmpValue::OctetString(r.name.clone()));

    // ipMRouteTable from the MFIB. Index: group.source.sourceMask.
    let entry = ip_mroute_entry();
    for e in net.mfib[router.index()].iter() {
        if e.key.is_wildcard() {
            continue; // RFC 2932 represents (*,G) with zero source+mask;
                      // period agents rarely did — skip as they did.
        }
        let index: Vec<u32> = e
            .key
            .group
            .ip()
            .octets()
            .iter()
            .chain(e.key.source.octets().iter())
            .chain([255u8, 255, 255, 255].iter())
            .map(|b| u32::from(*b))
            .collect();
        let col = |c: u32| {
            let mut v = vec![c];
            v.extend(index.iter().copied());
            entry.child(v)
        };
        let upstream = net
            .topo
            .router(router)
            .ifaces
            .get(e.iif.index())
            .map(|i| i.addr)
            .unwrap_or(mantra_net::Ip::UNSPECIFIED);
        agent.bind(
            col(mroute_columns::UPSTREAM),
            SnmpValue::IpAddress(upstream),
        );
        agent.bind(
            col(mroute_columns::IIF),
            SnmpValue::Integer(i64::from(e.iif.0) + 1),
        );
        agent.bind(
            col(mroute_columns::UPTIME),
            SnmpValue::TimeTicks(now.since(e.created).as_secs() * 100),
        );
        agent.bind(col(mroute_columns::PKTS), SnmpValue::Counter(e.packets));
        agent.bind(col(mroute_columns::OCTETS), SnmpValue::Counter(e.bytes));
    }

    // dvmrpRouteTable from the DVMRP RIB. Index: source-net.source-mask.
    if let Some(engine) = net.dvmrp[router.index()].as_ref() {
        let entry = dvmrp_route_entry();
        for route in engine.rib.iter() {
            let index: Vec<u32> = route
                .prefix
                .network()
                .octets()
                .iter()
                .chain(route.prefix.netmask().octets().iter())
                .map(|b| u32::from(*b))
                .collect();
            let col = |c: u32| {
                let mut v = vec![c];
                v.extend(index.iter().copied());
                entry.child(v)
            };
            let upstream = route
                .next_hop
                .map(|h| net.topo.router(h).addr)
                .unwrap_or(mantra_net::Ip::UNSPECIFIED);
            agent.bind(col(dvmrp_columns::UPSTREAM), SnmpValue::IpAddress(upstream));
            agent.bind(
                col(dvmrp_columns::METRIC),
                SnmpValue::Integer(i64::from(route.metric.min(32))),
            );
            let expiry = if route.is_reachable() {
                engine
                    .timers
                    .route_expiry
                    .as_secs()
                    .saturating_sub(now.since(route.last_refresh).as_secs())
            } else {
                0
            };
            agent.bind(
                col(dvmrp_columns::EXPIRY),
                SnmpValue::TimeTicks(expiry * 100),
            );
        }
    }

    // igmpCacheTable. Index: group.ifIndex.
    let entry = igmp_cache_entry();
    for (iface, group, m) in net.igmp[router.index()].iter() {
        let mut index: Vec<u32> = group.ip().octets().iter().map(|b| u32::from(*b)).collect();
        index.push(iface.0 + 1);
        let col = |c: u32| {
            let mut v = vec![c];
            v.extend(index.iter().copied());
            entry.child(v)
        };
        // igmpCacheSelf: the router itself is not a member.
        agent.bind(col(2), SnmpValue::Integer(2));
        agent.bind(
            col(7),
            SnmpValue::TimeTicks(now.since(m.since).as_secs() * 100),
        );
    }

    // And that is all: no MSDP subtree, no MBGP multicast RIB, no PIM
    // tables. GETNEXT past the IGMP cache falls off the end of the MIB.
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn warmed() -> (mantra_sim::Scenario, SimTime) {
        let mut sc = Scenario::transition_snapshot(61, 0.5);
        let t = sc.sim.clock + SimDuration::hours(6);
        sc.sim.advance_to(t);
        (sc, t)
    }

    #[test]
    fn view_has_system_mroute_and_dvmrp() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        assert!(agent.len() > 50, "bindings: {}", agent.len());
        // sysName round trip.
        let name = agent.get("public", &system_base().child([5, 0])).unwrap();
        assert_eq!(name, SnmpValue::OctetString("fixw".into()));
        // Both tables walkable.
        let mroute = agent.walk("public", &ip_mroute_entry()).unwrap();
        assert!(!mroute.is_empty());
        let dvmrp = agent.walk("public", &dvmrp_route_entry()).unwrap();
        assert!(!dvmrp.is_empty());
        // Five columns per mroute entry.
        assert_eq!(mroute.len() % 5, 0);
        // Three columns per dvmrp route.
        assert_eq!(dvmrp.len() % 3, 0);
    }

    #[test]
    fn no_msdp_or_mbgp_subtrees_exist() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        // The MSDP MIB that would later become RFC 4624 draft space, and
        // any hypothetical MBGP view: nothing there.
        for missing in ["1.3.6.1.3.92", "1.3.6.1.2.1.92", "1.3.6.1.2.1.15"] {
            let rows = agent.walk("public", &missing.parse().unwrap()).unwrap();
            assert!(rows.is_empty(), "subtree {missing} must be absent");
        }
        // Even though the router itself *does* have an SA cache.
        assert!(!sc.sim.net.msdp[sc.fixw.index()]
            .as_ref()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn counters_are_counters_not_rates() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        let rows = agent.walk("public", &ip_mroute_entry()).unwrap();
        // Octet columns exist and are monotone counters (non-zero for
        // active entries), but nothing in the view is a rate.
        let octets: Vec<u64> = rows
            .iter()
            .filter(|(o, _)| o.suffix(&ip_mroute_entry()).unwrap()[0] == mroute_columns::OCTETS)
            .filter_map(|(_, v)| v.as_u64())
            .collect();
        assert!(!octets.is_empty());
        assert!(octets.iter().any(|b| *b > 0));
    }

    #[test]
    fn mrouted_style_router_reports_mrouted_sysdescr() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.ucsb, now);
        let descr = agent.get("public", &system_base().child([1, 0])).unwrap();
        match descr {
            SnmpValue::OctetString(s) => assert!(s.contains("mrouted"), "{s}"),
            other => panic!("wrong type {other:?}"),
        }
    }
}
