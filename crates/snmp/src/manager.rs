//! The SNMP management side: `mstat`-style walks and an SNMP-based
//! collector that produces Mantra's local tables — so the two collection
//! paths can be compared directly.
//!
//! The comparison is the point. SNMP collection:
//!
//! * gets the forwarding and DVMRP tables (fine),
//! * has to poll **twice** to turn octet counters into the rates Mantra's
//!   sender classification needs,
//! * and comes back empty-handed for the SA cache and the MBGP RIB,
//!   because those MIBs did not exist — exactly the gap that pushed the
//!   paper to CLI scraping.

use std::collections::BTreeMap;

use mantra_core::tables::{LearnedFrom, PairRow, RouteRow, Tables};
use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimTime};

use crate::agent::Agent;
use crate::mib::{dvmrp_columns, dvmrp_route_entry, ip_mroute_entry, mroute_columns};
use crate::types::SnmpError;

/// A simple manager bound to one community string.
#[derive(Clone, Debug)]
pub struct Manager {
    /// The community used for every request.
    pub community: String,
}

impl Manager {
    /// Manager with the standard read community.
    pub fn new(community: impl Into<String>) -> Self {
        Manager {
            community: community.into(),
        }
    }

    /// An `mstat`-flavoured text report of the agent's multicast tables.
    pub fn mstat_report(&self, agent: &Agent) -> Result<String, SnmpError> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let sys = crate::mib::system_base();
        let name = agent.get(&self.community, &sys.child([5, 0]))?;
        let descr = agent.get(&self.community, &sys.child([1, 0]))?;
        let _ = writeln!(out, "mstat: {name:?} ({descr:?})");
        let mroute = agent.walk(&self.community, &ip_mroute_entry())?;
        let entries = mroute
            .iter()
            .filter(|(o, _)| o.suffix(&ip_mroute_entry()).unwrap()[0] == mroute_columns::PKTS)
            .count();
        let _ = writeln!(out, " ipMRouteTable: {entries} entries");
        let dvmrp = agent.walk(&self.community, &dvmrp_route_entry())?;
        let routes = dvmrp
            .iter()
            .filter(|(o, _)| o.suffix(&dvmrp_route_entry()).unwrap()[0] == dvmrp_columns::METRIC)
            .count();
        let _ = writeln!(out, " dvmrpRouteTable: {routes} entries");
        Ok(out)
    }
}

/// Per-pair poll state for rate derivation.
#[derive(Clone, Debug, Default)]
pub struct SnmpCollector {
    manager: Manager,
    prev_octets: BTreeMap<(GroupAddr, Ip), (u64, SimTime)>,
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new("public")
    }
}

impl SnmpCollector {
    /// A collector using `community`.
    pub fn new(community: impl Into<String>) -> Self {
        SnmpCollector {
            manager: Manager::new(community),
            prev_octets: BTreeMap::new(),
        }
    }

    /// One SNMP collection cycle against `agent`, producing Mantra's local
    /// tables. Pair rates are octet-counter deltas against the previous
    /// poll (zero on the first sight of a pair — the SNMP cold-start
    /// problem).
    pub fn collect(
        &mut self,
        agent: &Agent,
        router: &str,
        now: SimTime,
    ) -> Result<Tables, SnmpError> {
        let mut tables = Tables::new(router, now);
        let community = self.manager.community.clone();

        // ipMRouteTable → pairs.
        let entry = ip_mroute_entry();
        let rows = agent.walk(&community, &entry)?;
        let mut octets: BTreeMap<(GroupAddr, Ip), u64> = BTreeMap::new();
        let mut forwarding: BTreeMap<(GroupAddr, Ip), bool> = BTreeMap::new();
        for (oid, value) in &rows {
            let suffix = oid.suffix(&entry).expect("walk is bounded");
            let col = suffix[0];
            let Some(group_ip) = oid.ip_at(entry.len() + 1) else {
                continue;
            };
            let Some(source) = oid.ip_at(entry.len() + 5) else {
                continue;
            };
            let Ok(group) = GroupAddr::new(group_ip) else {
                continue;
            };
            match col {
                c if c == mroute_columns::OCTETS => {
                    if let Some(v) = value.as_u64() {
                        octets.insert((group, source), v);
                    }
                }
                c if c == mroute_columns::UPSTREAM => {
                    // Upstream 0.0.0.0 marks a non-forwarding entry in
                    // period agents.
                    forwarding.insert(
                        (group, source),
                        value
                            .as_ip()
                            .map(|ip| !ip.is_unspecified())
                            .unwrap_or(false),
                    );
                }
                _ => {}
            }
        }
        for ((group, source), total) in &octets {
            let rate = match self.prev_octets.get(&(*group, *source)) {
                Some((prev, at)) if now > *at => {
                    let dt = now.since(*at).as_secs().max(1);
                    BitRate::from_bps(total.saturating_sub(*prev) * 8 / dt)
                }
                _ => BitRate::ZERO, // first poll: no rate derivable
            };
            tables.add_pair(PairRow {
                source: *source,
                group: *group,
                current_bw: rate,
                avg_bw: rate,
                forwarding: forwarding.get(&(*group, *source)).copied().unwrap_or(true),
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        self.prev_octets = octets.into_iter().map(|(k, v)| (k, (v, now))).collect();

        // dvmrpRouteTable → routes.
        let entry = dvmrp_route_entry();
        let rows = agent.walk(&community, &entry)?;
        let mut metrics: BTreeMap<Prefix, u32> = BTreeMap::new();
        let mut upstream: BTreeMap<Prefix, Ip> = BTreeMap::new();
        for (oid, value) in &rows {
            let suffix = oid.suffix(&entry).expect("walk is bounded");
            let col = suffix[0];
            let (Some(net), Some(mask)) = (oid.ip_at(entry.len() + 1), oid.ip_at(entry.len() + 5))
            else {
                continue;
            };
            let len = mask.0.count_ones() as u8;
            let Ok(prefix) = Prefix::new(net, len) else {
                continue;
            };
            match col {
                c if c == dvmrp_columns::METRIC => {
                    if let Some(m) = value.as_u64() {
                        metrics.insert(prefix, m as u32);
                    }
                }
                c if c == dvmrp_columns::UPSTREAM => {
                    if let Some(ip) = value.as_ip() {
                        upstream.insert(prefix, ip);
                    }
                }
                _ => {}
            }
        }
        for (prefix, metric) in metrics {
            let nh = upstream
                .get(&prefix)
                .copied()
                .filter(|ip| !ip.is_unspecified());
            tables.add_route(RouteRow {
                prefix,
                next_hop: nh,
                metric,
                uptime: None,
                reachable: metric < 32,
                learned_from: LearnedFrom::Dvmrp,
            });
        }

        // MSDP SA cache, MBGP: no MIB, nothing to walk. `tables.sa_cache`
        // and the MBGP route set stay empty — the paper's limitation,
        // reproduced.
        Ok(tables)
    }
}

/// Convenience: one-shot collection (no rate state).
pub fn snmp_collect(agent: &Agent, router: &str, now: SimTime) -> Result<Tables, SnmpError> {
    SnmpCollector::new("public").collect(agent, router, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::refresh_agent;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn warmed() -> (mantra_sim::Scenario, SimTime) {
        let mut sc = Scenario::transition_snapshot(71, 0.5);
        let t = sc.sim.clock + SimDuration::hours(6);
        sc.sim.advance_to(t);
        (sc, t)
    }

    #[test]
    fn mstat_report_summarises_tables() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        let m = Manager::new("public");
        let report = m.mstat_report(&agent).unwrap();
        assert!(report.contains("ipMRouteTable"));
        assert!(report.contains("dvmrpRouteTable"));
        assert!(Manager::new("nope").mstat_report(&agent).is_err());
    }

    #[test]
    fn snmp_collect_builds_tables_without_sa_or_mbgp() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        let tables = snmp_collect(&agent, "fixw", now).unwrap();
        assert!(!tables.pairs.is_empty());
        assert!(tables.reachable_dvmrp_routes() > 10);
        // The structural gap: nothing interdomain.
        assert!(tables.sa_cache.is_empty());
        assert_eq!(tables.routes_of(LearnedFrom::Mbgp).count(), 0);
    }

    #[test]
    fn rates_require_two_polls() {
        let (mut sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        let mut collector = SnmpCollector::new("public");
        let first = collector.collect(&agent, "fixw", now).unwrap();
        // Every rate is zero on the first poll.
        assert!(first.pairs.values().all(|p| p.current_bw == BitRate::ZERO));
        // Advance and poll again: deltas yield nonzero rates for active
        // pairs.
        let later = now + SimDuration::mins(15);
        sc.sim.advance_to(later);
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, later);
        let second = collector.collect(&agent, "fixw", later).unwrap();
        assert!(
            second.pairs.values().any(|p| p.current_bw.bps() > 0),
            "second poll derives rates"
        );
    }

    #[test]
    fn snmp_and_cli_agree_on_dvmrp_route_count() {
        let (sc, now) = warmed();
        let mut agent = Agent::new("public");
        refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
        let snmp_tables = snmp_collect(&agent, "fixw", now).unwrap();
        // CLI pipeline on the same state.
        let raw = mantra_router_cli::render(
            &sc.sim.net,
            sc.fixw,
            mantra_router_cli::TableKind::DvmrpRoutes,
            now,
        );
        let cap = mantra_core::collector::preprocess(
            "fixw",
            mantra_router_cli::TableKind::DvmrpRoutes,
            &raw,
            now,
        );
        let (cli_tables, _) = mantra_core::processor::process(&[cap]);
        assert_eq!(
            snmp_tables.reachable_dvmrp_routes(),
            cli_tables.reachable_dvmrp_routes(),
            "two collection paths, one truth"
        );
    }
}
