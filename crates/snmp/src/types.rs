//! SNMPv2 value and protocol types.
//!
//! The wire format (BER/DER) is deliberately not modelled: what the
//! reproduction needs is MIB *content* and GETNEXT *semantics*, which is
//! where the paper's "SNMP is not enough" argument lives.

use serde::{Deserialize, Serialize};

use mantra_net::Ip;

use crate::oid::Oid;

/// An SNMP variable binding value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnmpValue {
    /// INTEGER / Integer32.
    Integer(i64),
    /// Counter32/64 (monotonic).
    Counter(u64),
    /// Gauge32 (instantaneous level, e.g. a rate).
    Gauge(u64),
    /// TimeTicks (hundredths of a second).
    TimeTicks(u64),
    /// IpAddress.
    IpAddress(Ip),
    /// OCTET STRING (textual convention where applicable).
    OctetString(String),
    /// OBJECT IDENTIFIER.
    ObjectId(Oid),
}

impl SnmpValue {
    /// Numeric view, when the type has one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            SnmpValue::Integer(v) => u64::try_from(*v).ok(),
            SnmpValue::Counter(v) | SnmpValue::Gauge(v) | SnmpValue::TimeTicks(v) => Some(*v),
            _ => None,
        }
    }

    /// IpAddress view.
    pub fn as_ip(&self) -> Option<Ip> {
        match self {
            SnmpValue::IpAddress(ip) => Some(*ip),
            _ => None,
        }
    }
}

/// SNMP request outcomes (the v1-era error-status vocabulary the period
/// tools keyed on).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnmpError {
    /// Wrong community string: agents silently drop in v1; we surface it.
    BadCommunity,
    /// GET on a missing object.
    NoSuchName(Oid),
    /// GETNEXT walked off the end of the MIB view.
    EndOfMib,
}

impl std::fmt::Display for SnmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnmpError::BadCommunity => write!(f, "bad community string"),
            SnmpError::NoSuchName(o) => write!(f, "noSuchName: {o}"),
            SnmpError::EndOfMib => write!(f, "end of MIB view"),
        }
    }
}

impl std::error::Error for SnmpError {}

/// One variable binding.
pub type VarBind = (Oid, SnmpValue);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(SnmpValue::Integer(5).as_u64(), Some(5));
        assert_eq!(SnmpValue::Integer(-5).as_u64(), None);
        assert_eq!(SnmpValue::Counter(9).as_u64(), Some(9));
        assert_eq!(SnmpValue::Gauge(7).as_u64(), Some(7));
        assert_eq!(SnmpValue::OctetString("x".into()).as_u64(), None);
        let ip = Ip::new(10, 0, 0, 1);
        assert_eq!(SnmpValue::IpAddress(ip).as_ip(), Some(ip));
        assert_eq!(SnmpValue::Integer(1).as_ip(), None);
    }

    #[test]
    fn errors_display() {
        let e = SnmpError::NoSuchName("1.3.6".parse().unwrap());
        assert!(e.to_string().contains("1.3.6"));
        assert!(SnmpError::BadCommunity.to_string().contains("community"));
    }
}
