//! The router-resident SNMP agent.
//!
//! An agent is a community string plus a MIB view: an ordered map from
//! OIDs to values, rebuilt from router state at refresh time (real agents
//! served cached table snapshots the same way). GET returns exact
//! matches; GETNEXT returns the first binding strictly after the given
//! OID — the primitive every period tool (`mstat`, `mrtree`) built table
//! walks from; GETBULK batches GETNEXTs.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::oid::Oid;
use crate::types::{SnmpError, SnmpValue, VarBind};

/// A router's SNMP agent.
#[derive(Clone, Debug, Default)]
pub struct Agent {
    community: String,
    view: BTreeMap<Oid, SnmpValue>,
}

impl Agent {
    /// An agent with the given read community and an empty view.
    pub fn new(community: impl Into<String>) -> Self {
        Agent {
            community: community.into(),
            view: BTreeMap::new(),
        }
    }

    /// Installs or replaces one binding (MIB builders call this).
    pub fn bind(&mut self, oid: Oid, value: SnmpValue) {
        self.view.insert(oid, value);
    }

    /// Number of bindings in the view.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Clears the view (before a rebuild).
    pub fn clear(&mut self) {
        self.view.clear();
    }

    fn check_community(&self, community: &str) -> Result<(), SnmpError> {
        if community == self.community {
            Ok(())
        } else {
            Err(SnmpError::BadCommunity)
        }
    }

    /// GET: the exact binding.
    pub fn get(&self, community: &str, oid: &Oid) -> Result<SnmpValue, SnmpError> {
        self.check_community(community)?;
        self.view
            .get(oid)
            .cloned()
            .ok_or_else(|| SnmpError::NoSuchName(oid.clone()))
    }

    /// GETNEXT: the first binding strictly after `oid`.
    pub fn get_next(&self, community: &str, oid: &Oid) -> Result<VarBind, SnmpError> {
        self.check_community(community)?;
        self.view
            .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
            .next()
            .map(|(o, v)| (o.clone(), v.clone()))
            .ok_or(SnmpError::EndOfMib)
    }

    /// GETBULK: up to `max_repetitions` successive bindings after `oid`.
    pub fn get_bulk(
        &self,
        community: &str,
        oid: &Oid,
        max_repetitions: usize,
    ) -> Result<Vec<VarBind>, SnmpError> {
        self.check_community(community)?;
        Ok(self
            .view
            .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
            .take(max_repetitions)
            .map(|(o, v)| (o.clone(), v.clone()))
            .collect())
    }

    /// Walks an entire subtree (successive GETNEXTs bounded by the root).
    pub fn walk(&self, community: &str, root: &Oid) -> Result<Vec<VarBind>, SnmpError> {
        self.check_community(community)?;
        let mut out = Vec::new();
        let mut cur = root.clone();
        loop {
            match self.get_next(community, &cur) {
                Ok((oid, value)) => {
                    if !root.contains(&oid) {
                        break;
                    }
                    cur = oid.clone();
                    out.push((oid, value));
                }
                Err(SnmpError::EndOfMib) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    fn agent() -> Agent {
        let mut a = Agent::new("public");
        a.bind(
            oid("1.3.6.1.2.1.1.1.0"),
            SnmpValue::OctetString("fixw".into()),
        );
        a.bind(oid("1.3.6.1.2.1.83.1.1.2.1"), SnmpValue::Counter(10));
        a.bind(oid("1.3.6.1.2.1.83.1.1.2.2"), SnmpValue::Counter(20));
        a.bind(oid("1.3.6.1.2.1.83.1.1.2.3"), SnmpValue::Counter(30));
        a.bind(oid("1.3.6.1.2.1.85.1.1.1"), SnmpValue::Integer(1));
        a
    }

    #[test]
    fn get_exact_and_missing() {
        let a = agent();
        assert_eq!(
            a.get("public", &oid("1.3.6.1.2.1.1.1.0")),
            Ok(SnmpValue::OctetString("fixw".into()))
        );
        assert_eq!(
            a.get("public", &oid("1.3.6.1.2.1.9.9.9")),
            Err(SnmpError::NoSuchName(oid("1.3.6.1.2.1.9.9.9")))
        );
    }

    #[test]
    fn community_checked_everywhere() {
        let a = agent();
        assert_eq!(
            a.get("private", &oid("1.3.6.1.2.1.1.1.0")),
            Err(SnmpError::BadCommunity)
        );
        assert_eq!(
            a.get_next("wrong", &oid("1.3")),
            Err(SnmpError::BadCommunity)
        );
        assert_eq!(a.walk("wrong", &oid("1.3")), Err(SnmpError::BadCommunity));
    }

    #[test]
    fn get_next_walks_in_order() {
        let a = agent();
        let (o1, _) = a.get_next("public", &oid("1.3.6.1.2.1.83.1.1.2")).unwrap();
        assert_eq!(o1, oid("1.3.6.1.2.1.83.1.1.2.1"));
        let (o2, v2) = a.get_next("public", &o1).unwrap();
        assert_eq!(o2, oid("1.3.6.1.2.1.83.1.1.2.2"));
        assert_eq!(v2, SnmpValue::Counter(20));
        // Past the last binding: end of MIB.
        assert_eq!(
            a.get_next("public", &oid("1.3.6.1.2.1.85.1.1.1")),
            Err(SnmpError::EndOfMib)
        );
    }

    #[test]
    fn walk_is_subtree_bounded() {
        let a = agent();
        let rows = a.walk("public", &oid("1.3.6.1.2.1.83")).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(o, _)| oid("1.3.6.1.2.1.83").contains(o)));
        // A walk of a missing subtree is empty, not an error.
        assert!(a.walk("public", &oid("1.3.6.1.2.1.84")).unwrap().is_empty());
    }

    #[test]
    fn get_bulk_batches() {
        let a = agent();
        let rows = a.get_bulk("public", &oid("1.3.6.1.2.1"), 2).unwrap();
        assert_eq!(rows.len(), 2);
        let all = a.get_bulk("public", &oid("0"), 100).unwrap();
        assert_eq!(all.len(), a.len());
    }
}
