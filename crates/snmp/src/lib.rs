//! The SNMP collection path — the one Mantra deliberately did *not* take.
//!
//! Section II of the paper explains the choice: SNMP was the standard
//! management mechanism, and the Merit tool suite (`mstat`, `mrtree`,
//! `mview`) used it, but "there is a lack of updated standards and
//! Management Information Bases (MIBs) for the newer multicast protocols.
//! In cases of protocols like MSDP, proper MIBs do not even exist."
//!
//! To make that argument reproducible rather than rhetorical, this crate
//! implements a period-accurate SNMP stack over the simulated routers:
//!
//! * [`oid`] — object identifiers with lexicographic ordering,
//! * [`types`] — SNMPv2 value/PDU types (sans BER wire encoding: the
//!   interesting behaviour is in the MIB views, not the octet framing),
//! * [`agent`] — a router-resident agent serving GET / GETNEXT / GETBULK
//!   over a MIB view with community-string checks,
//! * [`mib`] — the MIB modules a 1998 multicast router actually had:
//!   MIB-II system, IPMROUTE-STD-MIB (RFC 2932 draft), the DVMRP MIB
//!   draft and the IGMP MIB — and pointedly *nothing* for MSDP or MBGP,
//! * [`manager`] — `mstat`-style table walks and an alternative
//!   SNMP-based collector producing Mantra's local tables, so the two
//!   collection paths can be compared head-to-head (see the
//!   `snmp_vs_cli` integration test and the `collection_paths` example).

pub mod agent;
pub mod manager;
pub mod mib;
pub mod oid;
pub mod types;

pub use agent::Agent;
pub use manager::{snmp_collect, Manager};
pub use oid::Oid;
pub use types::{SnmpError, SnmpValue};
