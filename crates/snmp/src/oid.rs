//! Object identifiers.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An SNMP object identifier: a sequence of sub-identifiers, ordered
/// lexicographically (the order GETNEXT walks in).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Oid(pub Vec<u32>);

impl Oid {
    /// Builds from sub-identifiers.
    pub fn new(parts: impl Into<Vec<u32>>) -> Self {
        Oid(parts.into())
    }

    /// The standard `mgmt.mib-2` prefix `1.3.6.1.2.1`.
    pub fn mib2() -> Self {
        Oid(vec![1, 3, 6, 1, 2, 1])
    }

    /// The experimental subtree `1.3.6.1.3`, where the DVMRP MIB draft
    /// lived.
    pub fn experimental() -> Self {
        Oid(vec![1, 3, 6, 1, 3])
    }

    /// Child OID: `self` with extra sub-identifiers appended.
    pub fn child(&self, parts: impl IntoIterator<Item = u32>) -> Oid {
        let mut v = self.0.clone();
        v.extend(parts);
        Oid(v)
    }

    /// True when `self` is a prefix of `other` (subtree containment).
    pub fn contains(&self, other: &Oid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The sub-identifiers after prefix `root`, if contained.
    pub fn suffix(&self, root: &Oid) -> Option<&[u32]> {
        if root.contains(self) {
            Some(&self.0[root.0.len()..])
        } else {
            None
        }
    }

    /// Encodes an IPv4 address as four sub-identifiers (standard MIB
    /// index form).
    pub fn push_ip(&self, ip: mantra_net::Ip) -> Oid {
        self.child(ip.octets().map(u32::from))
    }

    /// Decodes four sub-identifiers starting at `at` as an IPv4 address.
    pub fn ip_at(&self, at: usize) -> Option<mantra_net::Ip> {
        let o = self.0.get(at..at + 4)?;
        if o.iter().any(|x| *x > 255) {
            return None;
        }
        Some(mantra_net::Ip::new(
            o[0] as u8, o[1] as u8, o[2] as u8, o[3] as u8,
        ))
    }

    /// Number of sub-identifiers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty OID.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({self})")
    }
}

impl FromStr for Oid {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut v = Vec::new();
        for part in s.trim_start_matches('.').split('.') {
            v.push(part.parse().map_err(|_| ())?);
        }
        Ok(Oid(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::Ip;

    #[test]
    fn display_parse_round_trip() {
        let o: Oid = "1.3.6.1.2.1.83.1.1.2".parse().unwrap();
        assert_eq!(o.to_string(), "1.3.6.1.2.1.83.1.1.2");
        assert_eq!(".1.3.6".parse::<Oid>().unwrap(), Oid::new([1, 3, 6]));
        assert!("1.3.x".parse::<Oid>().is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: Oid = "1.3.6.1".parse().unwrap();
        let b: Oid = "1.3.6.1.2".parse().unwrap();
        let c: Oid = "1.3.6.2".parse().unwrap();
        assert!(a < b, "prefix sorts before extension");
        assert!(b < c);
    }

    #[test]
    fn containment_and_suffix() {
        let root = Oid::mib2();
        let leaf = root.child([83, 1, 1, 2, 224]);
        assert!(root.contains(&leaf));
        assert!(!leaf.contains(&root));
        assert_eq!(leaf.suffix(&root), Some(&[83u32, 1, 1, 2, 224][..]));
        assert_eq!(root.suffix(&leaf), None);
    }

    #[test]
    fn ip_index_round_trip() {
        let base = Oid::new([1, 3]);
        let with_ip = base.push_ip(Ip::new(224, 2, 0, 9));
        assert_eq!(with_ip.to_string(), "1.3.224.2.0.9");
        assert_eq!(with_ip.ip_at(2), Some(Ip::new(224, 2, 0, 9)));
        assert_eq!(with_ip.ip_at(3), None, "runs past the end");
        let bad = Oid::new([1, 3, 999, 0, 0, 1]);
        assert_eq!(bad.ip_at(2), None);
    }
}
