//! Workload generation: session arrivals, lifetimes, membership and rates.
//!
//! The generators are calibrated to the paper's own reported statistics
//! rather than to any (unavailable) trace:
//!
//! * session counts in the low hundreds with high-frequency variation,
//! * storms of short-lived single-member sessions pushing the count past
//!   500 with >85 % single-member share,
//! * >65 % of sessions with ≤2 participants, while <6 % of sessions hold
//!   > ~80 % of participants (Zipf-skewed membership),
//! * aggregate sender bandwidth around 4 Mbps with σ ≈ 2 Mbps
//!   (log-normal per-sender rates),
//! * every participant also emits sub-threshold control traffic
//!   (RTCP-style, < 4 kbps),
//! * the 43rd-IETF broadcast: a scheduled high-density event.

use mantra_net::{BitRate, IfaceId, Ip, RouterId, SimDuration, SimTime};
use mantra_topology::Topology;

use crate::rng::SimRng;
use crate::session::SessionKind;

/// One planned participant of a planned session.
#[derive(Clone, Debug)]
pub struct ParticipantPlan {
    /// Join time as an offset from session creation.
    pub join_offset: SimDuration,
    /// Leave time as an offset from session creation (clamped to the
    /// session lifetime by the scheduler).
    pub leave_offset: SimDuration,
    /// The participant's steady sending rate.
    pub rate: BitRate,
    /// Attachment router.
    pub router: RouterId,
    /// Attachment leaf interface.
    pub iface: IfaceId,
    /// The leaf interface's address (host addresses derive from it).
    pub leaf_addr: Ip,
}

/// One planned session.
#[derive(Clone, Debug)]
pub struct SessionPlan {
    /// Behavioural class.
    pub kind: SessionKind,
    /// Creation time offset from the arrival event.
    pub start_offset: SimDuration,
    /// How long the session lives.
    pub lifetime: SimDuration,
    /// Planned participants.
    pub participants: Vec<ParticipantPlan>,
}

/// Calibration knobs. Defaults reproduce the paper's FIXW-era statistics.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Arrival rate of experimental/idle sessions, per hour.
    pub experimental_per_hour: f64,
    /// Arrival rate of content sessions, per hour.
    pub content_per_hour: f64,
    /// Arrival rate of long-lived broadcast channels, per hour. Rare but
    /// dominant: these are the NASA-TV/radio-station sessions whose large
    /// sticky audiences hold most of the MBone's participant mass.
    pub channels_per_hour: f64,
    /// Arrival rate of session storms, per day.
    pub storms_per_day: f64,
    /// Sessions per storm (inclusive range).
    pub storm_size: (u32, u32),
    /// Probability that an experimental session actually sends data.
    pub experimental_sender_prob: f64,
    /// Log-normal μ (of ln bps) for content sender rates.
    pub sender_rate_mu: f64,
    /// Log-normal σ for content sender rates.
    pub sender_rate_sigma: f64,
    /// Zipf exponent for attaching participants to domains.
    pub domain_skew: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            experimental_per_hour: 60.0,
            content_per_hour: 8.0,
            channels_per_hour: 0.15,
            storms_per_day: 1.5,
            storm_size: (300, 700),
            experimental_sender_prob: 0.12,
            // exp(11.7) ≈ 120 kbps geometric mean; σ=0.9 gives the 16–512
            // kbps spread of MBone audio/video streams. Calibrated so the
            // aggregate through FIXW lands near the paper's ~4 Mbps mean.
            sender_rate_mu: 11.7,
            sender_rate_sigma: 0.9,
            // Mild skew: audiences cluster but cross domains, so content
            // streams actually transit the exchange point.
            domain_skew: 0.7,
        }
    }
}

impl WorkloadConfig {
    /// Fleet-scale calibration: the FIXW-era rates multiplied up for an
    /// internetwork of hundreds of domains, with a steeper Zipf skew so
    /// audiences pile into the popular domains. At `audience_scale` 1.0
    /// a 30-day horizon accumulates over a million participant joins in
    /// expectation (counting only each session kind's guaranteed-minimum
    /// membership — the heavy Zipf/Pareto tails push the realised count
    /// into the millions); the scale knob multiplies every arrival rate.
    pub fn fleet_scale(audience_scale: f64) -> Self {
        let s = audience_scale.max(0.1);
        WorkloadConfig {
            experimental_per_hour: 1_000.0 * s,
            content_per_hour: 200.0 * s,
            channels_per_hour: 6.0 * s,
            storms_per_day: 12.0 * s,
            domain_skew: 1.1,
            ..WorkloadConfig::default()
        }
    }
}

/// One leaf-subnet attachment point.
#[derive(Clone, Copy, Debug)]
pub struct Attachment {
    /// The router owning the leaf.
    pub router: RouterId,
    /// The leaf interface.
    pub iface: IfaceId,
    /// The leaf interface address.
    pub addr: Ip,
    /// The domain, for popularity weighting.
    pub domain_rank: usize,
}

/// The workload generator. Owns its RNG stream so failure injection never
/// perturbs the traffic pattern.
#[derive(Debug)]
pub struct Workload {
    cfg: WorkloadConfig,
    rng: SimRng,
    attachments: Vec<Attachment>,
    /// Attachment indices per domain rank, so a pick is O(1) instead of
    /// a scan over every leaf in the internetwork (fleet topologies have
    /// thousands). Ranks with no leaves (the exchange domain) hold an
    /// empty list.
    by_domain: Vec<Vec<usize>>,
}

impl Workload {
    /// Builds a generator over the topology's leaf subnets.
    pub fn new(cfg: WorkloadConfig, topo: &Topology, rng: SimRng) -> Self {
        let mut attachments = Vec::new();
        for (rank, d) in topo.domains().iter().enumerate() {
            for &r in &d.routers {
                for i in topo.router(r).leaf_ifaces() {
                    attachments.push(Attachment {
                        router: r,
                        iface: i.id,
                        addr: i.addr,
                        domain_rank: rank,
                    });
                }
            }
        }
        assert!(
            !attachments.is_empty(),
            "workload requires at least one leaf subnet"
        );
        let n_dom = attachments.iter().map(|a| a.domain_rank).max().unwrap_or(0) + 1;
        let mut by_domain = vec![Vec::new(); n_dom];
        for (i, a) in attachments.iter().enumerate() {
            by_domain[a.domain_rank].push(i);
        }
        Workload {
            cfg,
            rng,
            attachments,
            by_domain,
        }
    }

    /// Total arrival-event rate per hour (experimental + content + storm
    /// events), modulated by a mild diurnal cycle.
    fn arrival_rate_per_hour(&self, now: SimTime) -> f64 {
        let base = self.cfg.experimental_per_hour
            + self.cfg.content_per_hour
            + self.cfg.channels_per_hour
            + self.cfg.storms_per_day / 24.0;
        // ±35 % diurnal swing peaking mid-day UTC-ish.
        let h = now.hour_of_day();
        let diurnal = 1.0 + 0.35 * ((h - 6.0) / 24.0 * std::f64::consts::TAU).sin();
        base * diurnal
    }

    /// Delay until the next arrival event.
    pub fn next_arrival_delay(&mut self, now: SimTime) -> SimDuration {
        let rate = self.arrival_rate_per_hour(now).max(1e-6);
        let secs = self.rng.exp(3600.0 / rate).clamp(1.0, 6.0 * 3600.0);
        SimDuration::secs(secs as u64)
    }

    /// Draws the sessions spawned by one arrival event: usually one, but a
    /// storm event yields hundreds of short single-member sessions.
    pub fn draw_sessions(&mut self, _now: SimTime) -> Vec<SessionPlan> {
        let c = &self.cfg;
        let total = c.experimental_per_hour
            + c.content_per_hour
            + c.channels_per_hour
            + c.storms_per_day / 24.0;
        let u = self.rng.unit() * total;
        if u < c.experimental_per_hour {
            vec![self.experimental_session()]
        } else if u < c.experimental_per_hour + c.content_per_hour {
            vec![self.content_session()]
        } else if u < c.experimental_per_hour + c.content_per_hour + c.channels_per_hour {
            vec![self.channel_session()]
        } else {
            self.storm()
        }
    }

    /// A long-lived broadcast channel: one or two sustained senders and a
    /// large, sticky audience drawn from many domains.
    fn channel_session(&mut self) -> SessionPlan {
        let lifetime = SimDuration::secs(self.rng.pareto(86_400.0, 1.2, 14.0 * 86_400.0) as u64);
        let mut participants = Vec::new();
        let senders = if self.rng.chance(0.3) { 2 } else { 1 };
        for _ in 0..senders {
            let a = self.pick_attachment();
            participants.push(ParticipantPlan {
                join_offset: SimDuration::ZERO,
                leave_offset: lifetime,
                rate: self.sender_rate(),
                router: a.router,
                iface: a.iface,
                leaf_addr: a.addr,
            });
        }
        let audience = self.rng.range_u64(30, 150);
        for _ in 0..audience {
            let a = self.pick_attachment();
            let join = self.rng.unit() * lifetime.as_secs() as f64 * 0.3;
            let leave = if self.rng.chance(0.7) {
                lifetime.as_secs() as f64
            } else {
                join + self.rng.pareto(3_600.0, 1.1, lifetime.as_secs() as f64)
            };
            participants.push(ParticipantPlan {
                join_offset: SimDuration::secs(join as u64),
                leave_offset: SimDuration::secs(leave as u64),
                rate: self.control_rate(),
                router: a.router,
                iface: a.iface,
                leaf_addr: a.addr,
            });
        }
        SessionPlan {
            kind: SessionKind::Broadcast,
            start_offset: SimDuration::ZERO,
            lifetime,
            participants,
        }
    }

    fn pick_attachment(&mut self) -> Attachment {
        // Zipf over domain ranks, then uniform over that domain's leaves
        // (uniform over every leaf when the drawn rank has none). The RNG
        // call sequence — one zipf, one index over the same pool size —
        // matches the original scan-based implementation exactly, so
        // seeded scenarios reproduce bit-identically.
        let dom = self.rng.zipf(self.by_domain.len(), self.cfg.domain_skew);
        let in_dom = &self.by_domain[dom];
        if in_dom.is_empty() {
            let idx = self.rng.index(self.attachments.len());
            self.attachments[idx]
        } else {
            let idx = self.rng.index(in_dom.len());
            self.attachments[in_dom[idx]]
        }
    }

    /// Control-traffic rate: 0.3–3 kbps, always below the 4 kbps threshold.
    fn control_rate(&mut self) -> BitRate {
        BitRate::from_bps(self.rng.range_u64(300, 3_000))
    }

    /// Content sender rate: log-normal, clamped to 8–512 kbps.
    fn sender_rate(&mut self) -> BitRate {
        let bps = self
            .rng
            .lognormal(self.cfg.sender_rate_mu, self.cfg.sender_rate_sigma)
            .clamp(8_000.0, 512_000.0);
        BitRate::from_bps(bps as u64)
    }

    fn experimental_session(&mut self) -> SessionPlan {
        let lifetime = SimDuration::secs(self.rng.pareto(600.0, 0.9, 259_200.0) as u64);
        let a = self.pick_attachment();
        let rate = if self.rng.chance(self.cfg.experimental_sender_prob) {
            BitRate::from_bps(self.rng.range_u64(8_000, 32_000))
        } else {
            self.control_rate()
        };
        SessionPlan {
            kind: SessionKind::Experimental,
            start_offset: SimDuration::ZERO,
            lifetime,
            participants: vec![ParticipantPlan {
                join_offset: SimDuration::ZERO,
                leave_offset: lifetime,
                rate,
                router: a.router,
                iface: a.iface,
                leaf_addr: a.addr,
            }],
        }
    }

    fn content_session(&mut self) -> SessionPlan {
        let lifetime = SimDuration::secs(self.rng.pareto(1_800.0, 1.1, 172_800.0) as u64);
        let mut participants = Vec::new();
        // One sender (occasionally two) for the whole session.
        let senders = if self.rng.chance(0.15) { 2 } else { 1 };
        for _ in 0..senders {
            let a = self.pick_attachment();
            participants.push(ParticipantPlan {
                join_offset: SimDuration::ZERO,
                leave_offset: lifetime,
                rate: self.sender_rate(),
                router: a.router,
                iface: a.iface,
                leaf_addr: a.addr,
            });
        }
        // Heavy-tailed receiver population. Audiences are sticky: popular
        // sessions hold most of their viewers for most of the session
        // (the paper's "<6 % of sessions account for ~80 % of
        // participants" concentration needs long co-residence, not just a
        // long joiner list).
        let receivers = (self.rng.pareto(1.0, 1.05, 250.0) as usize).saturating_sub(1);
        for _ in 0..receivers {
            let a = self.pick_attachment();
            let join = self.rng.unit() * lifetime.as_secs() as f64 * 0.5;
            let stay = if self.rng.chance(0.5) {
                lifetime.as_secs() as f64 // stays to the end
            } else {
                self.rng
                    .pareto(600.0, 1.1, lifetime.as_secs().max(601) as f64)
            };
            participants.push(ParticipantPlan {
                join_offset: SimDuration::secs(join as u64),
                leave_offset: SimDuration::secs((join + stay) as u64),
                rate: self.control_rate(),
                router: a.router,
                iface: a.iface,
                leaf_addr: a.addr,
            });
        }
        SessionPlan {
            kind: SessionKind::Content,
            start_offset: SimDuration::ZERO,
            lifetime,
            participants,
        }
    }

    fn storm(&mut self) -> Vec<SessionPlan> {
        let n = self.rng.range_u64(
            u64::from(self.cfg.storm_size.0),
            u64::from(self.cfg.storm_size.1),
        );
        // A storm comes from a single experimenting host's site.
        let a = self.pick_attachment();
        (0..n)
            .map(|i| {
                let lifetime = SimDuration::secs(self.rng.pareto(180.0, 1.4, 3_600.0) as u64);
                let rate = self.control_rate();
                SessionPlan {
                    kind: SessionKind::Experimental,
                    // The storm unfolds over ~10 minutes.
                    start_offset: SimDuration::secs(i * 600 / n.max(1)),
                    lifetime,
                    participants: vec![ParticipantPlan {
                        join_offset: SimDuration::ZERO,
                        leave_offset: lifetime,
                        rate,
                        router: a.router,
                        iface: a.iface,
                        leaf_addr: a.addr,
                    }],
                }
            })
            .collect()
    }

    /// The scheduled IETF-style broadcast: a long session with a handful of
    /// senders and a large, churning audience drawn from many domains.
    pub fn broadcast_event(&mut self, duration: SimDuration, audience: usize) -> SessionPlan {
        let mut participants = Vec::new();
        for _ in 0..4 {
            let a = self.pick_attachment();
            participants.push(ParticipantPlan {
                join_offset: SimDuration::ZERO,
                leave_offset: duration,
                rate: BitRate::from_bps(self.rng.range_u64(64_000, 256_000)),
                router: a.router,
                iface: a.iface,
                leaf_addr: a.addr,
            });
        }
        // `audience` is the event's *concurrent* audience level: the crowd
        // ramps in over the first third, and although individual viewers
        // churn, a departing viewer's slot refills (as the MBone's IETF
        // broadcasts held their density through the event). Half the slots
        // hold a single viewer to the end; the other half rotate through a
        // chain of viewers with heavy-tailed stays and short vacancies.
        // The ramp is stratified so the event delivers its advertised
        // audience rather than a noisy sample of it.
        let end = duration.as_secs() as f64;
        for i in 0..audience {
            let join = (i as f64 + 0.5) / audience as f64 * end * 0.35;
            if i % 2 == 0 {
                let a = self.pick_attachment();
                participants.push(ParticipantPlan {
                    join_offset: SimDuration::secs(join as u64),
                    leave_offset: duration,
                    rate: self.control_rate(),
                    router: a.router,
                    iface: a.iface,
                    leaf_addr: a.addr,
                });
            } else {
                let mut t = join;
                while t < end {
                    let stay = self.rng.pareto(7_200.0, 1.1, end.max(7_201.0));
                    let leave = (t + stay).min(end);
                    let a = self.pick_attachment();
                    participants.push(ParticipantPlan {
                        join_offset: SimDuration::secs(t as u64),
                        leave_offset: SimDuration::secs(leave as u64),
                        rate: self.control_rate(),
                        router: a.router,
                        iface: a.iface,
                        leaf_addr: a.addr,
                    });
                    // Brief vacancy before the slot refills.
                    t = leave + self.rng.exp(120.0).min(900.0);
                }
            }
        }
        SessionPlan {
            kind: SessionKind::Broadcast,
            start_offset: SimDuration::ZERO,
            lifetime: duration,
            participants,
        }
    }

    /// The attachment points (exposed for tests and examples).
    pub fn attachments(&self) -> &[Attachment] {
        &self.attachments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_topology::reference::{mbone_1998, TopologyConfig};

    fn workload() -> Workload {
        let r = mbone_1998(&TopologyConfig::default());
        Workload::new(WorkloadConfig::default(), &r.topo, SimRng::seeded(99))
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    #[test]
    fn arrival_delays_are_positive_and_diurnal() {
        let mut w = workload();
        let noon = SimTime::from_ymd_hms(1998, 11, 1, 12, 0, 0);
        let night = SimTime::from_ymd_hms(1998, 11, 1, 0, 0, 0);
        let avg = |w: &mut Workload, t: SimTime| {
            (0..500)
                .map(|_| w.next_arrival_delay(t).as_secs())
                .sum::<u64>() as f64
                / 500.0
        };
        let d_noon = avg(&mut w, noon);
        let d_night = avg(&mut w, night);
        assert!(d_noon > 1.0 && d_night > 1.0);
        assert!(d_noon < d_night, "daytime arrivals are denser");
    }

    #[test]
    fn most_sessions_are_small() {
        let mut w = workload();
        let mut sizes = Vec::new();
        for _ in 0..2_000 {
            for p in w.draw_sessions(t0()) {
                sizes.push(p.participants.len());
            }
        }
        let le2 = sizes.iter().filter(|s| **s <= 2).count();
        assert!(
            le2 as f64 / sizes.len() as f64 > 0.65,
            "paper: >65% of sessions have <=2 participants (got {})",
            le2 as f64 / sizes.len() as f64
        );
        // But the tail exists: some session has 10+ participants.
        assert!(sizes.iter().any(|s| *s >= 10));
    }

    #[test]
    fn top_sessions_hold_most_participants() {
        let mut w = workload();
        let mut sizes = Vec::new();
        for _ in 0..3_000 {
            for p in w.draw_sessions(t0()) {
                sizes.push(p.participants.len());
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        let top6pct: usize = sizes.iter().take(sizes.len() * 6 / 100).sum();
        // Per-arrival concentration; the paper's stronger "top 6 % hold
        // ~80 %" claim is about instantaneous snapshots, where long-lived
        // dense sessions dominate — asserted at the pipeline level in the
        // integration tests.
        assert!(
            top6pct as f64 / total as f64 > 0.30,
            "participants concentrate in few sessions (top6% hold {:.0}%)",
            100.0 * top6pct as f64 / total as f64
        );
    }

    #[test]
    fn storms_are_single_member_bursts() {
        let mut w = workload();
        // Draw until a storm shows up.
        let storm = loop {
            let drawn = w.draw_sessions(t0());
            if drawn.len() > 1 {
                break drawn;
            }
        };
        assert!(storm.len() >= 300);
        let single = storm.iter().filter(|s| s.participants.len() == 1).count();
        assert!(
            single as f64 / storm.len() as f64 > 0.85,
            "storm sessions are single-member"
        );
        // All from one site.
        let r0 = storm[0].participants[0].router;
        assert!(storm.iter().all(|s| s.participants[0].router == r0));
        // Short-lived.
        assert!(storm.iter().all(|s| s.lifetime <= SimDuration::hours(1)));
    }

    #[test]
    fn attachment_index_covers_every_leaf() {
        let w = workload();
        let indexed: usize = w.by_domain.iter().map(Vec::len).sum();
        assert_eq!(indexed, w.attachments.len());
        for (rank, idxs) in w.by_domain.iter().enumerate() {
            for &i in idxs {
                assert_eq!(w.attachments[i].domain_rank, rank);
            }
        }
        // Rank count matches the zipf pool of the old scan-based pick.
        let max_rank = w.attachments.iter().map(|a| a.domain_rank).max().unwrap();
        assert_eq!(w.by_domain.len(), max_rank + 1);
    }

    #[test]
    fn fleet_preset_expected_joins_reach_millions() {
        let c = WorkloadConfig::fleet_scale(1.0);
        let hours = 30.0 * 24.0;
        // Guaranteed-minimum membership per kind: experimental and
        // content sessions seat at least one participant, a channel at
        // least 30 audience + 1 sender, a storm at least 300
        // single-member sessions.
        let expected = c.experimental_per_hour * hours
            + c.content_per_hour * hours
            + c.channels_per_hour * hours * 31.0
            + c.storms_per_day * 30.0 * 300.0;
        assert!(expected >= 1.0e6, "expected joins {expected:.0}");
        // The scale knob multiplies arrivals.
        let c3 = WorkloadConfig::fleet_scale(3.0);
        assert!((c3.experimental_per_hour / c.experimental_per_hour - 3.0).abs() < 1e-9);
        assert!(c.domain_skew > WorkloadConfig::default().domain_skew);
    }

    #[test]
    fn control_traffic_stays_below_threshold() {
        let mut w = workload();
        for _ in 0..500 {
            let r = w.control_rate();
            assert!(!r.is_sender(mantra_net::rate::SENDER_THRESHOLD));
        }
    }

    #[test]
    fn sender_rates_span_mbone_range() {
        let mut w = workload();
        let rates: Vec<u64> = (0..2_000).map(|_| w.sender_rate().bps()).collect();
        assert!(rates.iter().all(|r| (8_000..=512_000).contains(r)));
        let mean = rates.iter().sum::<u64>() as f64 / rates.len() as f64;
        assert!((40_000.0..200_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn broadcast_event_shape() {
        let mut w = workload();
        let plan = w.broadcast_event(SimDuration::days(5), 200);
        assert_eq!(plan.kind, SessionKind::Broadcast);
        // Churning slots refill, so the plan holds at least one viewer per
        // audience slot plus the senders.
        assert!(
            plan.participants.len() >= 204,
            "{}",
            plan.participants.len()
        );
        let senders = plan
            .participants
            .iter()
            .filter(|p| p.rate.is_sender(mantra_net::rate::SENDER_THRESHOLD))
            .count();
        assert_eq!(senders, 4);
        // The advertised audience is concurrent: mid-event, nearly every
        // slot is occupied.
        let mid = SimDuration::days(5).as_secs() / 2;
        let present = plan
            .participants
            .iter()
            .filter(|p| p.join_offset.as_secs() <= mid && p.leave_offset.as_secs() > mid)
            .count();
        assert!(present >= 190, "concurrent audience {present}");
        // Audience comes from more than one domain's leaves.
        let routers: std::collections::BTreeSet<RouterId> =
            plan.participants.iter().map(|p| p.router).collect();
        assert!(routers.len() > 3);
    }
}
