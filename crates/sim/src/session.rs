//! Sessions and participants — the ground truth the monitoring tool tries
//! to estimate.
//!
//! A *session* is a multicast group plus the set of hosts participating in
//! it. Every participant emits at least control traffic (RTCP-style
//! feedback, well under the 4 kbps threshold); *content senders* emit real
//! data streams. This mirrors the paper's classification: the router's
//! forwarding table holds `(S,G)` state for every participant-group pair,
//! and Mantra tells senders from passive participants by rate.

use std::collections::BTreeMap;

use mantra_net::{BitRate, GroupAddr, HostId, IfaceId, Ip, RouterId, SimTime};

/// Why a session exists; drives its lifetime and membership dynamics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// Short-lived single-member test sessions (the storms behind the
    /// paper's spikes: one host opening hundreds of groups).
    Experimental,
    /// Ordinary content sessions: one or a few senders, a heavy-tailed
    /// number of receivers.
    Content,
    /// Big, well-advertised events — the 43rd IETF broadcast of Figure 4.
    Broadcast,
}

/// One participating host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Participant {
    /// The host.
    pub host: HostId,
    /// The router whose leaf subnet the host sits on.
    pub router: RouterId,
    /// The leaf interface on that router.
    pub iface: IfaceId,
    /// The host's address (inside the leaf /24).
    pub addr: Ip,
    /// Steady sending rate: control-level for passive participants,
    /// content-level for senders.
    pub rate: BitRate,
    /// When the host joined.
    pub joined: SimTime,
}

/// One live session.
#[derive(Clone, Debug)]
pub struct Session {
    /// The session's group address.
    pub group: GroupAddr,
    /// Behavioural class.
    pub kind: SessionKind,
    /// Creation time.
    pub created: SimTime,
    /// Current participants by host.
    pub participants: BTreeMap<HostId, Participant>,
}

impl Session {
    /// Participants sending faster than `threshold` (content senders).
    pub fn senders(&self, threshold: BitRate) -> impl Iterator<Item = &Participant> {
        self.participants
            .values()
            .filter(move |p| p.rate.is_sender(threshold))
    }

    /// Number of participants (the session's *density*).
    pub fn density(&self) -> usize {
        self.participants.len()
    }

    /// Aggregate source rate of the session.
    pub fn total_rate(&self) -> BitRate {
        self.participants.values().map(|p| p.rate).sum()
    }
}

/// The registry of live sessions; allocates group and host identities.
#[derive(Clone, Debug, Default)]
pub struct SessionRegistry {
    sessions: BTreeMap<GroupAddr, Session>,
    next_group: u32,
    next_host: u32,
    host_seq_per_leaf: BTreeMap<(RouterId, IfaceId), u32>,
}

impl SessionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Creates a session on a fresh group address.
    pub fn create(&mut self, kind: SessionKind, now: SimTime) -> GroupAddr {
        let group = GroupAddr::from_index(self.next_group);
        self.next_group = self.next_group.wrapping_add(1);
        self.sessions.insert(
            group,
            Session {
                group,
                kind,
                created: now,
                participants: BTreeMap::new(),
            },
        );
        group
    }

    /// Ends a session, returning it (if it was still live).
    pub fn end(&mut self, group: GroupAddr) -> Option<Session> {
        self.sessions.remove(&group)
    }

    /// Adds a participant on the given leaf; allocates the host identity
    /// and an address inside the leaf's /24. Returns `None` when the
    /// session has already ended.
    pub fn join(
        &mut self,
        group: GroupAddr,
        router: RouterId,
        iface: IfaceId,
        leaf_addr: Ip,
        rate: BitRate,
        now: SimTime,
    ) -> Option<HostId> {
        let session = self.sessions.get_mut(&group)?;
        let host = HostId(self.next_host);
        self.next_host = self.next_host.wrapping_add(1);
        let seq = self.host_seq_per_leaf.entry((router, iface)).or_insert(0);
        *seq = seq.wrapping_add(1);
        // Hosts get .2 … .251 inside the leaf /24.
        let addr = Ip((leaf_addr.0 & 0xFFFF_FF00) + 2 + (*seq % 250));
        session.participants.insert(
            host,
            Participant {
                host,
                router,
                iface,
                addr,
                rate,
                joined: now,
            },
        );
        Some(host)
    }

    /// Removes a participant; returns it if present.
    pub fn leave(&mut self, group: GroupAddr, host: HostId) -> Option<Participant> {
        self.sessions.get_mut(&group)?.participants.remove(&host)
    }

    /// A live session by group.
    pub fn get(&self, group: GroupAddr) -> Option<&Session> {
        self.sessions.get(&group)
    }

    /// Iterates live sessions in group order.
    pub fn iter(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Total participants across all sessions.
    pub fn participant_count(&self) -> usize {
        self.sessions.values().map(|s| s.density()).sum()
    }

    /// Sessions with at least one sender above `threshold` — the paper's
    /// *active sessions*.
    pub fn active_count(&self, threshold: BitRate) -> usize {
        self.sessions
            .values()
            .filter(|s| s.senders(threshold).next().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn leaf() -> (RouterId, IfaceId, Ip) {
        (RouterId(3), IfaceId(2), Ip::new(128, 1, 0, 1))
    }

    #[test]
    fn create_join_leave_end() {
        let mut reg = SessionRegistry::new();
        let g = reg.create(SessionKind::Content, t0());
        let (r, i, a) = leaf();
        let h1 = reg.join(g, r, i, a, BitRate::from_kbps(128), t0()).unwrap();
        let h2 = reg.join(g, r, i, a, BitRate::from_bps(800), t0()).unwrap();
        assert_ne!(h1, h2);
        assert_eq!(reg.get(g).unwrap().density(), 2);
        assert_eq!(reg.participant_count(), 2);
        let p = reg.leave(g, h2).unwrap();
        assert_eq!(p.rate, BitRate::from_bps(800));
        assert_eq!(reg.get(g).unwrap().density(), 1);
        let s = reg.end(g).unwrap();
        assert_eq!(s.participants.len(), 1);
        assert!(reg.is_empty());
        // Joining an ended session is a no-op.
        assert!(reg.join(g, r, i, a, BitRate::ZERO, t0()).is_none());
        assert!(reg.leave(g, h1).is_none());
    }

    #[test]
    fn host_addresses_stay_inside_leaf() {
        let mut reg = SessionRegistry::new();
        let g = reg.create(SessionKind::Content, t0());
        let (r, i, a) = leaf();
        for _ in 0..300 {
            let h = reg.join(g, r, i, a, BitRate::ZERO, t0()).unwrap();
            let p = &reg.get(g).unwrap().participants[&h];
            assert_eq!(p.addr.octets()[0..3], a.octets()[0..3]);
            let last = p.addr.octets()[3];
            assert!((2..=251).contains(&last));
        }
    }

    #[test]
    fn groups_are_unique_and_sequential() {
        let mut reg = SessionRegistry::new();
        let g1 = reg.create(SessionKind::Experimental, t0());
        let g2 = reg.create(SessionKind::Experimental, t0());
        assert_ne!(g1, g2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn sender_classification_and_active_sessions() {
        let mut reg = SessionRegistry::new();
        let th = mantra_net::rate::SENDER_THRESHOLD;
        let (r, i, a) = leaf();
        let g1 = reg.create(SessionKind::Content, t0());
        reg.join(g1, r, i, a, BitRate::from_kbps(64), t0());
        reg.join(g1, r, i, a, BitRate::from_bps(900), t0());
        let g2 = reg.create(SessionKind::Experimental, t0());
        reg.join(g2, r, i, a, BitRate::from_bps(500), t0());
        assert_eq!(reg.get(g1).unwrap().senders(th).count(), 1);
        assert_eq!(reg.get(g2).unwrap().senders(th).count(), 0);
        assert_eq!(reg.active_count(th), 1);
        assert_eq!(reg.get(g1).unwrap().total_rate(), BitRate::from_bps(64_900));
    }
}
