//! Distribution-tree computation and forwarding-state maintenance.
//!
//! Once per tick the builder recomputes, for every *monitored* router, the
//! forwarding entries that router would hold in steady state, then folds
//! them into its MFIB (creating entries, updating oif lists, accounting
//! traffic) and lets entries that are no longer justified decay out through
//! the cache-idle timeout — exactly how a real router's cache would follow
//! the protocol state, sampled at the monitoring cadence.
//!
//! The protocol semantics encoded here are the paper's central contrast:
//!
//! * **DVMRP / flood-and-prune** — an `(S,G)` entry exists on *every*
//!   router of the DVMRP region that has a reverse-path route to the
//!   source, members or not (pruned entries have an empty oif list). This
//!   is why pre-transition FIXW saw every experimental session in the
//!   MBone.
//! * **PIM-SM / sparse** — state exists only on routers along
//!   member→RP shared-tree paths and source→interested-party shortest
//!   paths, with interdomain interest gated on MSDP source-actives. This
//!   is the "filtering" that stabilised FIXW's tables after the
//!   transition.
//!
//! Only monitored routers materialise MFIB state: the tool under study can
//! only scrape the routers it logs into, and skipping the rest keeps
//! six-month scenarios tractable.

use std::collections::BTreeMap;

use mantra_net::{BitRate, GroupAddr, IfaceId, Ip, RouterId, SimDuration, SimTime};
use mantra_protocols::mfib::{EntryOrigin, SourceGroup};

use crate::network::{LinkFilter, Network, TreeHop};
use crate::session::{Participant, SessionRegistry};

/// How many ticks an unjustified cache entry survives before expiry.
const CACHE_IDLE_TICKS: u64 = 2;

#[derive(Clone, Debug)]
struct Desired {
    iif: IfaceId,
    oifs: std::collections::BTreeSet<IfaceId>,
    origin: EntryOrigin,
    rate: BitRate,
}

/// Per-tick forwarding-state builder. Holds scratch allocations so the
/// per-tick cost is dominated by the work, not allocator traffic.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    dvmrp_trees: BTreeMap<RouterId, Vec<Option<TreeHop>>>,
    sparse_trees: BTreeMap<RouterId, Vec<Option<TreeHop>>>,
    desired: BTreeMap<RouterId, BTreeMap<SourceGroup, Desired>>,
}

impl TreeBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    /// Recomputes and applies forwarding state for `monitored` routers.
    ///
    /// `dt` is the tick length (traffic is accounted for the whole tick).
    pub fn rebuild(
        &mut self,
        net: &mut Network,
        sessions: &SessionRegistry,
        monitored: &[RouterId],
        now: SimTime,
        dt: SimDuration,
    ) {
        self.dvmrp_trees.clear();
        self.sparse_trees.clear();
        self.desired.clear();
        for m in monitored {
            self.desired.insert(*m, BTreeMap::new());
        }

        // Pass 1: per-source desired state, plus MSDP originations.
        let mut originations: Vec<(RouterId, Ip, GroupAddr)> = Vec::new();
        for session in sessions.iter() {
            let group = session.group;
            let members: Vec<&Participant> = session.participants.values().collect();
            for p in &members {
                self.source_state(net, group, p, &members, monitored, &mut originations);
            }
            // Shared-tree state for member domains (sparse only).
            self.shared_tree_state(net, group, &members, monitored, now);
        }
        for (rp, src, group) in originations {
            if let Some(e) = net.msdp[rp.index()].as_mut() {
                e.originate(src, group, now);
            }
        }

        // Pass 2: fold into the MFIBs.
        for (router, wanted) in &self.desired {
            let mfib = &mut net.mfib[router.index()];
            for (key, d) in wanted {
                let e = mfib.entry(*key, d.iif, d.origin, now);
                e.iif = d.iif;
                e.oifs = d.oifs.iter().copied().collect();
                e.account_traffic(d.rate, dt.as_secs(), now);
                if d.rate == BitRate::ZERO {
                    // Protocol state keeps the entry alive even without
                    // traffic (pruned/idle entries still show in the CLI).
                    e.last_active = now;
                }
            }
            // Entries no longer justified: decay their rate estimate, then
            // expire them after the idle window.
            let stale: Vec<SourceGroup> = mfib
                .iter()
                .filter(|e| !wanted.contains_key(&e.key))
                .map(|e| e.key)
                .collect();
            for k in &stale {
                if let Some(e) = mfib.get_mut(k) {
                    e.rate = BitRate(e.rate.bps() / 2);
                }
            }
            let cutoff = SimTime(
                now.as_secs()
                    .saturating_sub(dt.as_secs() * CACHE_IDLE_TICKS),
            );
            mfib.expire_idle(cutoff);
        }
    }

    // ------------------------------------------------------------------
    // Per-source (S,G) state
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn source_state(
        &mut self,
        net: &Network,
        group: GroupAddr,
        p: &Participant,
        members: &[&Participant],
        monitored: &[RouterId],
        originations: &mut Vec<(RouterId, Ip, GroupAddr)>,
    ) {
        let rs = p.router;
        let src_sparse = net.topo.router(rs).suite.pim_sm;
        let src_dvmrp = net.topo.router(rs).suite.dvmrp;

        if src_dvmrp {
            self.dvmrp_flood(net, group, p, rs, members, monitored, EntryOrigin::Dvmrp);
        }
        if src_sparse {
            self.sparse_spt(net, group, p, rs, members, monitored, originations);
        }
        if !src_sparse {
            // A DVMRP-side source crosses into the native world through a
            // sparse-capable border in its component (FIXW's border role):
            // the border registers the source with MSDP and serves as the
            // SPT target for native-side interest.
            if let Some(border) = self.dvmrp_border(net, rs) {
                if net.msdp[border.index()].is_some() {
                    originations.push((border, p.addr, group));
                }
                self.sparse_spt_from_entry(
                    net, group, p, border, members, monitored, /*entry_iif*/ None,
                );
            }
        }
        if src_sparse {
            // A native source reaches DVMRP-side members by the border
            // pulling the stream and flooding it into the DVMRP region —
            // but only when the region actually has members (the paper's
            // post-transition filtering).
            let borders: Vec<RouterId> = monitored
                .iter()
                .copied()
                .chain(self.all_borders(net))
                .filter(|b| net.topo.router(*b).suite.dvmrp && net.topo.router(*b).suite.pim_sm)
                .collect();
            for border in borders {
                let has_dvmrp_members = {
                    let tree = self.dvmrp_tree(net, border);
                    members.iter().any(|m| {
                        m.router != border
                            && net.topo.router(m.router).suite.dvmrp
                            && tree[m.router.index()].is_some()
                    })
                };
                if has_dvmrp_members {
                    self.dvmrp_flood(
                        net,
                        group,
                        p,
                        border,
                        members,
                        monitored,
                        EntryOrigin::Dvmrp,
                    );
                    break;
                }
            }
        }
    }

    /// Flood-and-prune from entry router `root` (the source's first-hop
    /// router, or a border re-injecting a native stream).
    #[allow(clippy::too_many_arguments)]
    fn dvmrp_flood(
        &mut self,
        net: &Network,
        group: GroupAddr,
        p: &Participant,
        root: RouterId,
        members: &[&Participant],
        monitored: &[RouterId],
        origin: EntryOrigin,
    ) {
        let key = SourceGroup::sg(p.addr, group);
        let is_native_reinjection = root != p.router;
        // Presence and iif for each monitored router.
        for &m in monitored {
            if !net.topo.router(m).suite.dvmrp {
                continue;
            }
            let (present, iif) = {
                let tree = self.dvmrp_tree(net, root);
                if m == root {
                    (
                        true,
                        if is_native_reinjection {
                            // The stream arrives on the border's sparse side.
                            net.topo
                                .router(m)
                                .ifaces
                                .first()
                                .map(|i| i.id)
                                .unwrap_or(IfaceId(0))
                        } else {
                            p.iface
                        },
                    )
                } else {
                    match tree[m.index()] {
                        Some(h) => (true, h.iface_to_parent),
                        None => (false, IfaceId(0)),
                    }
                }
            };
            if !present {
                continue;
            }
            // RPF check: a router whose DVMRP table lost the route to the
            // source network drops the state (route instability bleeds
            // into usage monitoring). Skipped for re-injected native
            // sources, whose RPF points at the border's sparse side.
            if !is_native_reinjection && m != p.router {
                let ok = net.dvmrp[m.index()]
                    .as_ref()
                    .is_some_and(|e| e.rib.rpf(p.addr).is_some());
                if !ok {
                    continue;
                }
            }
            let d = self
                .desired
                .get_mut(&m)
                .expect("monitored")
                .entry(key)
                .or_insert(Desired {
                    iif,
                    oifs: Default::default(),
                    origin,
                    rate: BitRate::ZERO,
                });
            d.iif = iif;
            // Local members deliver to their leaf interfaces.
            for mem in members {
                if mem.router == m && mem.host != p.host {
                    d.oifs.insert(mem.iface);
                }
            }
        }
        // Branch oifs: walk each member's path to the root, marking the
        // ifaces monitored ancestors use toward that member.
        let tree = self.dvmrp_tree(net, root).clone();
        let mut on_path: Vec<(RouterId, IfaceId)> = Vec::new();
        for mem in members {
            if mem.host == p.host || !net.topo.router(mem.router).suite.dvmrp {
                continue;
            }
            let mut cur = mem.router;
            let mut steps = 0;
            while let Some(h) = tree[cur.index()] {
                on_path.push((h.parent, h.parent_iface));
                cur = h.parent;
                steps += 1;
                if steps > net.topo.router_count() {
                    break;
                }
            }
        }
        for (router, oif) in on_path {
            if let Some(wanted) = self.desired.get_mut(&router) {
                if let Some(d) = wanted.get_mut(&key) {
                    d.oifs.insert(oif);
                }
            }
        }
        // Traffic: the stream is observed at routers that forward it
        // (non-empty oifs) and at the source's first-hop router.
        let rate = p.rate;
        for &m in monitored {
            if let Some(d) = self.desired.get_mut(&m).and_then(|w| w.get_mut(&key)) {
                if !d.oifs.is_empty() || m == p.router || (is_native_reinjection && m == root) {
                    d.rate = rate;
                }
            }
        }
    }

    /// Sparse-mode SPT state for a native source.
    #[allow(clippy::too_many_arguments)]
    fn sparse_spt(
        &mut self,
        net: &Network,
        group: GroupAddr,
        p: &Participant,
        rs: RouterId,
        members: &[&Participant],
        monitored: &[RouterId],
        originations: &mut Vec<(RouterId, Ip, GroupAddr)>,
    ) {
        // The source's RP registers it and originates the MSDP SA.
        if let Some(rp) = net.pim_sm[rs.index()]
            .as_ref()
            .and_then(|e| e.rp_set.rp_for(group))
        {
            if net.msdp[rp.index()].is_some() {
                originations.push((rp, p.addr, group));
            }
        }
        self.sparse_spt_from_entry(net, group, p, rs, members, monitored, Some(p.iface));
    }

    /// Builds `(S,G)` sparse state on paths from interested routers to the
    /// SPT entry point (`entry` = the source's first-hop router, or the
    /// border standing in for a DVMRP-side source). `entry_iif` is the
    /// interface traffic arrives on at the entry router (`None` = derive a
    /// placeholder for border re-entry).
    #[allow(clippy::too_many_arguments)]
    fn sparse_spt_from_entry(
        &mut self,
        net: &Network,
        group: GroupAddr,
        p: &Participant,
        entry: RouterId,
        members: &[&Participant],
        monitored: &[RouterId],
        entry_iif: Option<IfaceId>,
    ) {
        let key = SourceGroup::sg(p.addr, group);
        // Interested routers: the RP of the source's own domain, the RPs of
        // member domains whose SA cache knows this source, and member
        // routers themselves (immediate SPT switchover).
        let mut interested: Vec<(RouterId, Option<IfaceId>)> = Vec::new();
        if let Some(rp) = net.pim_sm[entry.index()]
            .as_ref()
            .and_then(|e| e.rp_set.rp_for(group))
        {
            if rp != entry {
                interested.push((rp, None));
            }
        }
        let entry_domain = net.topo.router(entry).domain;
        let mut domains_seen = std::collections::BTreeSet::new();
        for mem in members {
            if mem.host == p.host || !net.topo.router(mem.router).suite.pim_sm {
                continue;
            }
            let dom = net.topo.router(mem.router).domain;
            let same_domain = dom == entry_domain;
            // Interdomain interest requires the member domain's RP to have
            // learned the source via MSDP.
            let visible = same_domain || {
                net.topo
                    .domain(dom)
                    .border
                    .and_then(|b| {
                        // The domain RP is the border in our topologies.
                        net.msdp[b.index()].as_ref()
                    })
                    .is_some_and(|sa| sa.sources_for(group).contains(&p.addr))
            };
            if !visible {
                continue;
            }
            interested.push((mem.router, Some(mem.iface)));
            if !same_domain {
                domains_seen.insert(dom);
            }
        }
        for dom in domains_seen {
            if let Some(rp) = net.topo.domain(dom).border {
                interested.push((rp, None));
            }
        }
        if interested.is_empty() {
            // Still: the entry router itself holds (S,G) for a directly
            // attached source (register state).
            if entry == p.router {
                if let Some(w) = self.desired.get_mut(&entry) {
                    w.entry(key).or_insert(Desired {
                        iif: entry_iif.unwrap_or(p.iface),
                        oifs: Default::default(),
                        origin: EntryOrigin::PimSm,
                        rate: p.rate,
                    });
                }
            }
            return;
        }
        let tree = self.sparse_tree(net, entry).clone();
        let monitored_set: std::collections::BTreeSet<RouterId> =
            monitored.iter().copied().collect();
        let mark = |builder: &mut TreeBuilder,
                    router: RouterId,
                    iif: IfaceId,
                    oif: Option<IfaceId>,
                    rate: BitRate| {
            if !monitored_set.contains(&router) {
                return;
            }
            let w = builder.desired.get_mut(&router).expect("monitored");
            let d = w.entry(key).or_insert(Desired {
                iif,
                oifs: Default::default(),
                origin: if net.topo.router(p.router).suite.pim_sm {
                    EntryOrigin::PimSm
                } else {
                    EntryOrigin::Msdp
                },
                rate: BitRate::ZERO,
            });
            d.iif = iif;
            if let Some(o) = oif {
                d.oifs.insert(o);
            }
            if rate > d.rate {
                d.rate = rate;
            }
        };
        for (t, leaf) in interested {
            if t == entry {
                mark(self, entry, entry_iif.unwrap_or(IfaceId(0)), leaf, p.rate);
                continue;
            }
            // The interested router itself.
            if let Some(h) = tree[t.index()] {
                mark(self, t, h.iface_to_parent, leaf, p.rate);
                // Ancestors up to the entry.
                let mut cur = t;
                let mut steps = 0;
                while let Some(h) = tree[cur.index()] {
                    let parent_iif = match tree[h.parent.index()] {
                        Some(ph) => ph.iface_to_parent,
                        None => entry_iif.unwrap_or(IfaceId(0)),
                    };
                    mark(self, h.parent, parent_iif, Some(h.parent_iface), p.rate);
                    cur = h.parent;
                    steps += 1;
                    if steps > net.topo.router_count() {
                        break;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Shared ((*,G)) trees
    // ------------------------------------------------------------------

    /// `(*,G)` state along member→RP paths inside native domains.
    fn shared_tree_state(
        &mut self,
        net: &Network,
        group: GroupAddr,
        members: &[&Participant],
        monitored: &[RouterId],
        _now: SimTime,
    ) {
        let monitored_set: std::collections::BTreeSet<RouterId> =
            monitored.iter().copied().collect();
        let key = SourceGroup::star_g(group);
        for mem in members {
            let r = mem.router;
            let Some(engine) = net.pim_sm[r.index()].as_ref() else {
                continue;
            };
            let Some(rp) = engine.rp_set.rp_for(group) else {
                continue;
            };
            let tree = self.sparse_tree(net, rp).clone();
            let mark = |builder: &mut TreeBuilder,
                        router: RouterId,
                        iif: IfaceId,
                        oif: Option<IfaceId>| {
                if !monitored_set.contains(&router) {
                    return;
                }
                let w = builder.desired.get_mut(&router).expect("monitored");
                let d = w.entry(key).or_insert(Desired {
                    iif,
                    oifs: Default::default(),
                    origin: EntryOrigin::PimSm,
                    rate: BitRate::ZERO,
                });
                d.iif = iif;
                if let Some(o) = oif {
                    d.oifs.insert(o);
                }
            };
            // The member router delivers locally.
            let member_iif = tree[r.index()]
                .map(|h| h.iface_to_parent)
                .unwrap_or(mem.iface);
            mark(self, r, member_iif, Some(mem.iface));
            // Ancestors toward the RP.
            let mut cur = r;
            let mut steps = 0;
            while let Some(h) = tree[cur.index()] {
                let parent_iif = tree[h.parent.index()]
                    .map(|ph| ph.iface_to_parent)
                    .unwrap_or(IfaceId(0));
                mark(self, h.parent, parent_iif, Some(h.parent_iface));
                cur = h.parent;
                steps += 1;
                if steps > net.topo.router_count() {
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Tree caches and helpers
    // ------------------------------------------------------------------

    fn dvmrp_tree(&mut self, net: &Network, root: RouterId) -> &Vec<Option<TreeHop>> {
        self.dvmrp_trees
            .entry(root)
            .or_insert_with(|| net.bfs_tree(root, LinkFilter::Dvmrp))
    }

    fn sparse_tree(&mut self, net: &Network, root: RouterId) -> &Vec<Option<TreeHop>> {
        self.sparse_trees
            .entry(root)
            .or_insert_with(|| net.bfs_tree(root, LinkFilter::Sparse))
    }

    /// A sparse-capable border inside the DVMRP component of `rs`.
    fn dvmrp_border(&mut self, net: &Network, rs: RouterId) -> Option<RouterId> {
        let tree = self.dvmrp_tree(net, rs);
        (0..net.topo.router_count())
            .map(|i| RouterId(i as u32))
            .find(|r| {
                (tree[r.index()].is_some() || *r == rs)
                    && net.topo.router(*r).suite.pim_sm
                    && net.topo.router(*r).suite.dvmrp
            })
    }

    fn all_borders(&self, net: &Network) -> Vec<RouterId> {
        net.topo.domains().iter().filter_map(|d| d.border).collect()
    }
}
