//! Application-layer monitoring — the approach the paper contrasts Mantra
//! against.
//!
//! Period tools estimated multicast state from end-user protocols:
//! `sdr-monitor` counted SAP session announcements; `mlisten`/`rtpmon`
//! joined groups and counted RTCP receiver reports. The paper's critique,
//! reproduced here:
//!
//! * **SAP**: only advertised sessions are visible; experimental sessions
//!   mostly are not, and announcements stop arriving the moment multicast
//!   connectivity to the announcer breaks (no feedback on failure).
//! * **RTCP**: not every application implements it, so participants are
//!   under-counted; its scalability back-off stretches report intervals
//!   as sessions grow, so estimates *lag*; and like SAP it requires
//!   end-to-end delivery to the measurement point.
//!
//! [`AppLayerMonitor`] implements an sdr-monitor/mlisten-style observer at
//! one listening router, so the same simulated world can be measured both
//! ways and the difference quantified (see the `app_vs_network_layer`
//! example and the comparison tests).

use std::collections::BTreeMap;

use mantra_net::{GroupAddr, HostId, RouterId, SimDuration, SimTime};

use crate::network::LinkFilter;
use crate::rng::SimRng;
use crate::scenario::Simulation;
use crate::session::SessionKind;

/// Behaviour knobs, defaulted to the period's observed compliance levels.
#[derive(Clone, Debug)]
pub struct AppLayerConfig {
    /// Fraction of participants whose applications actually send RTCP.
    pub rtcp_compliance: f64,
    /// Probability a content/broadcast session is announced via SAP.
    pub sap_content: f64,
    /// Probability an experimental session is announced via SAP.
    pub sap_experimental: f64,
    /// Base RTCP report interval (RFC 1889 minimum 5 s).
    pub rtcp_min_interval: SimDuration,
}

impl Default for AppLayerConfig {
    fn default() -> Self {
        AppLayerConfig {
            rtcp_compliance: 0.7,
            sap_content: 0.9,
            sap_experimental: 0.2,
            rtcp_min_interval: SimDuration::secs(5),
        }
    }
}

/// What the application-layer observer reports after one pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppLayerView {
    /// Sessions known from SAP announcements reaching the listener.
    pub sap_sessions: usize,
    /// Sessions with RTP/RTCP packets reaching the listener.
    pub rtcp_sessions: usize,
    /// Participants counted from RTCP reports (compliant + reachable +
    /// past their first report interval).
    pub rtcp_participants: usize,
    /// Ground truth at observation time, for convenience.
    pub truth_sessions: usize,
    /// Ground-truth participants.
    pub truth_participants: usize,
}

impl AppLayerView {
    /// Session coverage in `[0, 1]` versus ground truth.
    pub fn session_coverage(&self) -> f64 {
        if self.truth_sessions == 0 {
            1.0
        } else {
            self.sap_sessions as f64 / self.truth_sessions as f64
        }
    }

    /// Participant coverage in `[0, 1]` versus ground truth.
    pub fn participant_coverage(&self) -> f64 {
        if self.truth_participants == 0 {
            1.0
        } else {
            self.rtcp_participants as f64 / self.truth_participants as f64
        }
    }
}

/// An sdr-monitor/mlisten-style observer attached to one router's leaf.
#[derive(Debug)]
pub struct AppLayerMonitor {
    /// Where the observer host sits.
    pub listener: RouterId,
    cfg: AppLayerConfig,
    rng: SimRng,
    // Sticky per-host/per-session draws so compliance and advertisement
    // are properties of the entity, not of the observation.
    compliance: BTreeMap<HostId, bool>,
    advertised: BTreeMap<GroupAddr, bool>,
}

impl AppLayerMonitor {
    /// A monitor at `listener` with its own RNG stream.
    pub fn new(listener: RouterId, cfg: AppLayerConfig, rng: SimRng) -> Self {
        AppLayerMonitor {
            listener,
            cfg,
            rng,
            compliance: BTreeMap::new(),
            advertised: BTreeMap::new(),
        }
    }

    fn is_compliant(&mut self, host: HostId) -> bool {
        let p = self.cfg.rtcp_compliance;
        *self
            .compliance
            .entry(host)
            .or_insert_with(|| self.rng.chance(p))
    }

    fn is_advertised(&mut self, group: GroupAddr, kind: SessionKind) -> bool {
        let p = match kind {
            SessionKind::Experimental => self.cfg.sap_experimental,
            SessionKind::Content | SessionKind::Broadcast => self.cfg.sap_content,
        };
        *self
            .advertised
            .entry(group)
            .or_insert_with(|| self.rng.chance(p))
    }

    /// The RTCP report interval for a session of the given size: RFC 1889
    /// scales the interval with the group so control traffic stays below
    /// 5 % — which is exactly what degrades temporal resolution.
    pub fn rtcp_interval(&self, density: usize) -> SimDuration {
        let scaled = self.cfg.rtcp_min_interval.as_secs() * (1 + density as u64 / 4);
        SimDuration::secs(scaled)
    }

    /// The SAP session directory as heard at the listener: advertised,
    /// reachable sessions with their announced names (what `sdr` showed,
    /// and where Mantra's optional session-name column comes from).
    pub fn sap_directory(&mut self, sim: &Simulation, _now: SimTime) -> Vec<(GroupAddr, String)> {
        let suite = sim.net.topo.router(self.listener).suite;
        let dv_tree = suite
            .dvmrp
            .then(|| sim.net.bfs_tree(self.listener, LinkFilter::Dvmrp));
        let sp_tree = suite
            .pim_sm
            .then(|| sim.net.bfs_tree(self.listener, LinkFilter::Sparse));
        let listener = self.listener;
        let reachable = |router: RouterId| -> bool {
            router == listener
                || dv_tree
                    .as_ref()
                    .is_some_and(|t| t[router.index()].is_some())
                || sp_tree
                    .as_ref()
                    .is_some_and(|t| t[router.index()].is_some())
        };
        let mut out = Vec::new();
        for session in sim.sessions.iter() {
            let announcer_ok = session
                .participants
                .values()
                .next()
                .map(|p| reachable(p.router))
                .unwrap_or(false);
            if !announcer_ok || !self.is_advertised(session.group, session.kind) {
                continue;
            }
            let name = match session.kind {
                SessionKind::Broadcast => format!("Broadcast Channel ({})", session.group),
                SessionKind::Content => format!("MBone Session {}", session.group),
                SessionKind::Experimental => format!("test {}", session.group),
            };
            out.push((session.group, name));
        }
        out
    }

    /// One observation pass over the simulation's live state.
    pub fn observe(&mut self, sim: &Simulation, now: SimTime) -> AppLayerView {
        // Application packets reach the listener only where multicast
        // forwarding works end-to-end. DVMRP listeners receive over the
        // DVMRP overlay; sparse listeners over the sparse infrastructure;
        // a border hears both.
        let suite = sim.net.topo.router(self.listener).suite;
        let dv_tree = if suite.dvmrp {
            Some(sim.net.bfs_tree(self.listener, LinkFilter::Dvmrp))
        } else {
            None
        };
        let sp_tree = if suite.pim_sm {
            Some(sim.net.bfs_tree(self.listener, LinkFilter::Sparse))
        } else {
            None
        };
        let listener = self.listener;
        let reachable = |router: RouterId| -> bool {
            if router == listener {
                return true;
            }
            dv_tree
                .as_ref()
                .is_some_and(|t| t[router.index()].is_some())
                || sp_tree
                    .as_ref()
                    .is_some_and(|t| t[router.index()].is_some())
        };

        let mut view = AppLayerView::default();
        for session in sim.sessions.iter() {
            view.truth_sessions += 1;
            view.truth_participants += session.density();
            // SAP: visible if the session is advertised and the announcer
            // (first participant's site; sdr announced from a member) can
            // reach us.
            let announcer_reachable = session
                .participants
                .values()
                .next()
                .map(|p| reachable(p.router))
                .unwrap_or(false);
            if self.is_advertised(session.group, session.kind) && announcer_reachable {
                view.sap_sessions += 1;
            }
            // RTCP: count participants that are compliant, reachable, and
            // have been joined longer than the session's report interval
            // (otherwise their first report has not arrived yet).
            let interval = self.rtcp_interval(session.density());
            let mut heard = 0;
            for p in session.participants.values() {
                if !reachable(p.router) {
                    continue;
                }
                if now.since(p.joined) < interval {
                    continue;
                }
                if self.is_compliant(p.host) {
                    heard += 1;
                }
            }
            if heard > 0 {
                view.rtcp_sessions += 1;
                view.rtcp_participants += heard;
            }
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn observed(native: f64, compliance: f64) -> (AppLayerView, Scenario) {
        let mut sc = Scenario::transition_snapshot(88, native);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(12));
        let cfg = AppLayerConfig {
            rtcp_compliance: compliance,
            ..AppLayerConfig::default()
        };
        let mut mon = AppLayerMonitor::new(sc.ucsb, cfg, SimRng::seeded(5));
        let now = sc.sim.clock;
        let view = mon.observe(&sc.sim, now);
        (view, sc)
    }

    #[test]
    fn app_layer_undercounts_sessions_and_participants() {
        let (view, _) = observed(0.0, 0.7);
        assert!(view.truth_sessions > 20);
        // SAP misses most experimental sessions.
        assert!(
            view.session_coverage() < 0.75,
            "sap coverage {:.2}",
            view.session_coverage()
        );
        assert!(view.sap_sessions > 0);
        // RTCP misses non-compliant participants.
        assert!(
            view.participant_coverage() < 0.95,
            "rtcp coverage {:.2}",
            view.participant_coverage()
        );
        assert!(view.rtcp_participants > 0);
    }

    #[test]
    fn full_compliance_closes_most_of_the_participant_gap() {
        let (strict, _) = observed(0.0, 1.0);
        let (loose, _) = observed(0.0, 0.4);
        assert!(strict.rtcp_participants > loose.rtcp_participants);
    }

    #[test]
    fn rtcp_interval_scales_with_density() {
        let sc = Scenario::transition_snapshot(1, 0.0);
        let mon = AppLayerMonitor::new(sc.ucsb, AppLayerConfig::default(), SimRng::seeded(1));
        assert!(mon.rtcp_interval(200) > mon.rtcp_interval(2));
        assert!(mon.rtcp_interval(1) >= SimDuration::secs(5));
    }

    #[test]
    fn connectivity_break_blinds_the_app_layer() {
        let mut sc = Scenario::transition_snapshot(89, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
        let mut mon = AppLayerMonitor::new(sc.ucsb, AppLayerConfig::default(), SimRng::seeded(9));
        let healthy = mon.observe(&sc.sim, sc.sim.clock);
        // Cut the campus off from FIXW.
        let link = sc.sim.net.topo.link_between(sc.fixw, sc.ucsb).unwrap().id;
        let t = sc.sim.clock;
        sc.sim.net.on_link_change(link, false, t);
        let blind = mon.observe(&sc.sim, sc.sim.clock);
        assert!(
            blind.sap_sessions < healthy.sap_sessions / 2,
            "SAP goes quiet: {} -> {}",
            healthy.sap_sessions,
            blind.sap_sessions
        );
        assert!(
            blind.rtcp_participants < healthy.rtcp_participants,
            "RTCP goes quiet: {} -> {}",
            healthy.rtcp_participants,
            blind.rtcp_participants
        );
        // The paper's point: "when multicast is not operating correctly,
        // there is no feedback" — truth hasn't changed.
        assert_eq!(blind.truth_sessions, healthy.truth_sessions);
    }

    #[test]
    fn advertisement_and_compliance_are_sticky() {
        let mut sc = Scenario::transition_snapshot(90, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(3));
        let mut mon = AppLayerMonitor::new(sc.ucsb, AppLayerConfig::default(), SimRng::seeded(2));
        let now = sc.sim.clock;
        let a = mon.observe(&sc.sim, now);
        let b = mon.observe(&sc.sim, now);
        assert_eq!(a, b, "re-observing the same instant is stable");
    }
}
