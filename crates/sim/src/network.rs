//! The live network: topology plus per-router protocol engines.
//!
//! [`Network`] owns one engine of each protocol per router (where the
//! router's suite enables it) and implements the synchronous routing round
//! the simulation runs every tick: DVMRP report exchange (with configurable
//! report loss — the paper's main source of inter-router inconsistency),
//! MBGP session syncs, MSDP SA floods, and timer processing.

use mantra_net::{IfaceId, Ip, Prefix, RouterId, SimTime};
use mantra_protocols::dvmrp::{DvmrpEngine, DvmrpTimers};
use mantra_protocols::igmp::IgmpState;
use mantra_protocols::mbgp::MbgpEngine;
use mantra_protocols::mfib::Mfib;
use mantra_protocols::msdp::MsdpEngine;
use mantra_protocols::pim::{PimSmEngine, RpSet};
use mantra_topology::{LinkId, Topology};

use crate::rng::SimRng;

/// Which links a path computation may traverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFilter {
    /// Links whose both endpoints run DVMRP (the MBone overlay).
    Dvmrp,
    /// Links whose both endpoints run PIM-SM (the native infrastructure).
    Sparse,
    /// Any up link.
    Any,
}

/// One hop of a BFS tree: how a router reaches toward the root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeHop {
    /// The next router toward the root.
    pub parent: RouterId,
    /// This router's interface toward the parent (the RPF iif).
    pub iface_to_parent: IfaceId,
    /// The parent's interface toward this router (the parent's oif).
    pub parent_iface: IfaceId,
}

/// The live network state.
#[derive(Debug)]
pub struct Network {
    /// The underlying internetwork.
    pub topo: Topology,
    /// Per-router DVMRP engines (where enabled).
    pub dvmrp: Vec<Option<DvmrpEngine>>,
    /// Per-router IGMP querier state (all routers).
    pub igmp: Vec<IgmpState>,
    /// Per-router forwarding tables.
    pub mfib: Vec<Mfib>,
    /// Per-router PIM-SM engines (where enabled).
    pub pim_sm: Vec<Option<PimSmEngine>>,
    /// Per-router MBGP speakers (where enabled).
    pub mbgp: Vec<Option<MbgpEngine>>,
    /// Per-router MSDP engines (on RPs).
    pub msdp: Vec<Option<MsdpEngine>>,
    /// Interdomain MBGP sessions (pairs of speakers on a shared link).
    pub mbgp_peerings: Vec<(RouterId, RouterId)>,
    /// MSDP peerings (hub-and-spoke around the exchange RP).
    pub msdp_peerings: Vec<(RouterId, RouterId)>,
    /// DVMRP timers applied to every engine (scenario-scaled).
    pub dvmrp_timers: DvmrpTimers,
    /// Prefixes currently injected by the Figure 9 anomaly, per router.
    injected: Vec<Vec<Prefix>>,
    /// Extra per-domain prefixes advertised by borders, inflating route
    /// tables toward realistic MBone sizes.
    extra_prefixes_per_domain: usize,
    /// Per router: the links that were up when it went offline, restored on
    /// rejoin (links downed for other reasons stay down).
    offline_links: Vec<Vec<LinkId>>,
    /// Links cut by the most recent partition event, restored by heal.
    partition_cuts: Vec<LinkId>,
}

impl Network {
    /// Builds a network over `topo`, instantiating engines per suite.
    ///
    /// `extra_prefixes_per_domain` adds that many /24s under each domain's
    /// /16 to the border's advertisements, approximating the thousands of
    /// routes the real MBone carried without simulating thousands of
    /// routers.
    pub fn new(
        topo: Topology,
        now: SimTime,
        dvmrp_timers: DvmrpTimers,
        extra_prefixes_per_domain: usize,
    ) -> Self {
        let n = topo.router_count();
        let mut net = Network {
            topo,
            dvmrp: (0..n).map(|_| None).collect(),
            igmp: vec![IgmpState::new(); n],
            mfib: vec![Mfib::new(); n],
            pim_sm: (0..n).map(|_| None).collect(),
            mbgp: (0..n).map(|_| None).collect(),
            msdp: (0..n).map(|_| None).collect(),
            mbgp_peerings: Vec::new(),
            msdp_peerings: Vec::new(),
            dvmrp_timers,
            injected: vec![Vec::new(); n],
            extra_prefixes_per_domain,
            offline_links: vec![Vec::new(); n],
            partition_cuts: Vec::new(),
        };
        net.rebuild_control_plane(now);
        net
    }

    /// The prefixes a router originates: one /24 per leaf interface, plus
    /// the domain aggregate and synthetic extras on the domain border.
    fn originated_prefixes(&self, router: RouterId) -> Vec<Prefix> {
        let r = self.topo.router(router);
        let mut out: Vec<Prefix> = r
            .leaf_ifaces()
            .map(|i| Prefix::new(i.addr, 24).expect("valid /24"))
            .collect();
        let dom = self.topo.domain(r.domain);
        if dom.border == Some(router) {
            for p in &dom.prefixes {
                out.push(*p);
                // Extras live in the upper half of the /16 (third octet
                // ≥ 128) so they never collide with leaf subnets, which use
                // small third octets.
                for k in 0..self.extra_prefixes_per_domain.min(128) {
                    let q = Prefix::new(Ip(p.network().0 | ((128 + k as u32) << 8)), 24)
                        .expect("valid /24");
                    if p.covers(q) {
                        out.push(q);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// (Re)creates engines and peerings to match the current suites, keeping
    /// existing engine state wherever the protocol stays enabled. Called at
    /// construction and after every domain migration.
    pub fn rebuild_control_plane(&mut self, now: SimTime) {
        let n = self.topo.router_count();
        for i in 0..n {
            let id = RouterId(i as u32);
            // Offline routers run nothing; their engines come back fresh
            // (and reconverge from scratch) when the router rejoins.
            if !self.topo.is_active(id) {
                self.dvmrp[i] = None;
                self.pim_sm[i] = None;
                self.mbgp[i] = None;
                self.msdp[i] = None;
                continue;
            }
            let suite = self.topo.router(id).suite;
            // DVMRP.
            if suite.dvmrp {
                if self.dvmrp[i].is_none() {
                    let mut e = DvmrpEngine::new(id, self.originated_prefixes(id), now);
                    e.timers = self.dvmrp_timers;
                    self.dvmrp[i] = Some(e);
                }
            } else {
                self.dvmrp[i] = None;
            }
            // PIM-SM: the RP set is the set of RP-flagged routers in the
            // same domain.
            if suite.pim_sm {
                let domain = self.topo.router(id).domain;
                let rps: Vec<RouterId> = self
                    .topo
                    .domain(domain)
                    .routers
                    .iter()
                    .copied()
                    .filter(|r| self.topo.router(*r).suite.rp)
                    .collect();
                let set = RpSet::new(rps);
                match &mut self.pim_sm[i] {
                    Some(e) => e.rp_set = set,
                    None => self.pim_sm[i] = Some(PimSmEngine::new(id, set)),
                }
            } else {
                self.pim_sm[i] = None;
            }
            // MBGP: only border routers speak interdomain.
            let domain = self.topo.router(id).domain;
            let is_border = self.topo.domain(domain).border == Some(id);
            if suite.mbgp && is_border {
                if self.mbgp[i].is_none() {
                    self.mbgp[i] = Some(MbgpEngine::new(
                        id,
                        domain,
                        self.originated_prefixes(id),
                        now,
                    ));
                }
            } else {
                self.mbgp[i] = None;
            }
            // MSDP on RPs.
            if suite.msdp && suite.rp {
                if self.msdp[i].is_none() {
                    self.msdp[i] = Some(MsdpEngine::new(id));
                }
            } else {
                self.msdp[i] = None;
            }
        }
        // MBGP peerings: links whose two endpoints both speak MBGP and sit
        // in different domains.
        self.mbgp_peerings = self
            .topo
            .links()
            .iter()
            .filter(|l| {
                self.mbgp[l.a.router.index()].is_some()
                    && self.mbgp[l.b.router.index()].is_some()
                    && self.topo.router(l.a.router).domain != self.topo.router(l.b.router).domain
            })
            .map(|l| (l.a.router, l.b.router))
            .collect();
        // MSDP hub-and-spoke: the speaker with the most links is the hub
        // (historically the exchange-point RP), everyone else peers with it.
        let speakers: Vec<RouterId> = (0..n)
            .filter(|i| self.msdp[*i].is_some())
            .map(|i| RouterId(i as u32))
            .collect();
        self.msdp_peerings.clear();
        if speakers.len() >= 2 {
            let hub = *speakers
                .iter()
                .max_by_key(|r| self.topo.links_of(**r).count())
                .expect("non-empty");
            for s in &speakers {
                if *s != hub {
                    self.msdp_peerings.push((hub, *s));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Routing round
    // ------------------------------------------------------------------

    /// Runs one synchronous routing round at `now`.
    ///
    /// `report_loss` is the probability that any single DVMRP report (one
    /// direction of one link) is lost this round — the knob behind the
    /// paper's observed route instability and inter-router inconsistency.
    pub fn routing_round(&mut self, now: SimTime, report_loss: f64, rng: &mut SimRng) {
        self.dvmrp_round(now, report_loss, rng);
        self.mbgp_round(now);
        self.msdp_round(now);
    }

    fn dvmrp_round(&mut self, now: SimTime, loss: f64, rng: &mut SimRng) {
        // Phase 1: snapshot every report (synchronous exchange semantics).
        struct Delivery {
            to: RouterId,
            from: RouterId,
            via: IfaceId,
            metric: u32,
            report: Vec<(Prefix, u32)>,
        }
        let mut deliveries = Vec::new();
        for l in self.topo.links() {
            if !l.up {
                continue;
            }
            for (tx, rx) in [(l.a, l.b), (l.b, l.a)] {
                let (Some(sender), Some(_)) = (
                    self.dvmrp[tx.router.index()].as_ref(),
                    self.dvmrp[rx.router.index()].as_ref(),
                ) else {
                    continue;
                };
                if rng.chance(loss) {
                    continue;
                }
                deliveries.push(Delivery {
                    to: rx.router,
                    from: tx.router,
                    via: rx.iface,
                    metric: l.metric,
                    report: sender.report_for(rx.router),
                });
            }
        }
        // Phase 2: deliver.
        for d in deliveries {
            if let Some(e) = self.dvmrp[d.to.index()].as_mut() {
                e.handle_report(d.from, d.via, d.metric, &d.report, now);
            }
        }
        // Phase 3: timers.
        for e in self.dvmrp.iter_mut().flatten() {
            e.tick(now);
        }
    }

    fn mbgp_round(&mut self, now: SimTime) {
        let peerings = self.mbgp_peerings.clone();
        for (a, b) in peerings {
            // Skip sessions over down links.
            let link_up = self.topo.link_between(a, b).map(|l| l.up).unwrap_or(false);
            if !link_up {
                if let Some(e) = self.mbgp[a.index()].as_mut() {
                    e.session_down(b, now);
                }
                if let Some(e) = self.mbgp[b.index()].as_mut() {
                    e.session_down(a, now);
                }
                continue;
            }
            let dom_a = self.topo.router(a).domain;
            let dom_b = self.topo.router(b).domain;
            let to_b = self.mbgp[a.index()]
                .as_ref()
                .map(|e| e.advertisements_for(dom_b))
                .unwrap_or_default();
            let to_a = self.mbgp[b.index()]
                .as_ref()
                .map(|e| e.advertisements_for(dom_a))
                .unwrap_or_default();
            if let Some(e) = self.mbgp[b.index()].as_mut() {
                e.session_sync(a, to_b, now);
            }
            if let Some(e) = self.mbgp[a.index()].as_mut() {
                e.session_sync(b, to_a, now);
            }
        }
    }

    fn msdp_round(&mut self, now: SimTime) {
        let peerings = self.msdp_peerings.clone();
        for (a, b) in peerings {
            let to_b = self.msdp[a.index()]
                .as_ref()
                .map(|e| e.sa_for_peer(b))
                .unwrap_or_default();
            let to_a = self.msdp[b.index()]
                .as_ref()
                .map(|e| e.sa_for_peer(a))
                .unwrap_or_default();
            if let Some(e) = self.msdp[b.index()].as_mut() {
                e.handle_sa(a, &to_b, now);
            }
            if let Some(e) = self.msdp[a.index()].as_mut() {
                e.handle_sa(b, &to_a, now);
            }
        }
        for e in self.msdp.iter_mut().flatten() {
            e.expire(now);
        }
    }

    /// Reacts to a link state change: withdraws routes over dead sessions
    /// immediately, as real routers do on neighbor loss.
    pub fn on_link_change(&mut self, link: LinkId, up: bool, now: SimTime) {
        self.topo.set_link_up(link, up);
        if up {
            return; // Recovery happens through the next routing rounds.
        }
        let l = self.topo.link(link).clone();
        for (me, other) in [(l.a.router, l.b.router), (l.b.router, l.a.router)] {
            if let Some(e) = self.dvmrp[me.index()].as_mut() {
                e.neighbor_down(other, now);
            }
            if let Some(e) = self.mbgp[me.index()].as_mut() {
                e.session_down(other, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Topology churn
    // ------------------------------------------------------------------

    /// Takes a router offline. Every up link it touches goes down (so both
    /// sides see the DVMRP neighbor loss / MBGP session reset immediately),
    /// and the router's own protocol and group state is dropped — a rejoin
    /// boots cold and reconverges over the following routing rounds.
    pub fn router_leave(&mut self, router: RouterId, now: SimTime) {
        if !self.topo.is_active(router) {
            return;
        }
        let links: Vec<LinkId> = self
            .topo
            .links_of(router)
            .filter(|l| l.up)
            .map(|l| l.id)
            .collect();
        for l in &links {
            self.on_link_change(*l, false, now);
        }
        self.offline_links[router.index()] = links;
        self.topo.set_router_active(router, false);
        let i = router.index();
        self.dvmrp[i] = None;
        self.pim_sm[i] = None;
        self.mbgp[i] = None;
        self.msdp[i] = None;
        self.igmp[i] = IgmpState::new();
        self.mfib[i] = Mfib::new();
        self.injected[i].clear();
        // Peerings that involved the router must disappear from the meshes.
        self.rebuild_control_plane(now);
    }

    /// Brings a previously departed router back. The links it took down are
    /// restored where the far side is still active and not behind a
    /// partition cut; engines are rebuilt cold and relearn state through the
    /// next routing rounds.
    pub fn router_join(&mut self, router: RouterId, now: SimTime) {
        if self.topo.is_active(router) {
            return;
        }
        self.topo.set_router_active(router, true);
        let links = std::mem::take(&mut self.offline_links[router.index()]);
        for l in links {
            let link = self.topo.link(l);
            let far = if link.a.router == router {
                link.b.router
            } else {
                link.a.router
            };
            if !link.up && self.topo.is_active(far) && !self.partition_cuts.contains(&l) {
                self.on_link_change(l, true, now);
            }
        }
        self.rebuild_control_plane(now);
    }

    /// Partitions `domains` away from the rest of the internetwork by
    /// cutting every interdomain link crossing the boundary. A later
    /// [`Network::heal`] restores exactly this cut set.
    pub fn partition(&mut self, domains: &[mantra_net::DomainId], now: SimTime) {
        for l in self.topo.partition_cut(domains) {
            if self.topo.link(l).up {
                self.on_link_change(l, false, now);
                self.partition_cuts.push(l);
            }
        }
    }

    /// Heals the current partition: every link cut by partition events comes
    /// back up (where both endpoints are still active).
    pub fn heal(&mut self, now: SimTime) {
        let cuts = std::mem::take(&mut self.partition_cuts);
        for l in cuts {
            let link = self.topo.link(l);
            if !link.up
                && self.topo.is_active(link.a.router)
                && self.topo.is_active(link.b.router)
            {
                self.on_link_change(l, true, now);
            }
        }
    }

    /// Links currently held down by an unhealed partition.
    pub fn partition_cut_len(&self) -> usize {
        self.partition_cuts.len()
    }

    // ------------------------------------------------------------------
    // Anomaly injection
    // ------------------------------------------------------------------

    /// Leaks `count` unicast /24 routes into `router`'s DVMRP table — the
    /// 1998-10-14 incident of Figure 9.
    pub fn inject_unicast_routes(&mut self, router: RouterId, count: u32, now: SimTime) {
        let Some(e) = self.dvmrp[router.index()].as_mut() else {
            return;
        };
        let prefixes: Vec<Prefix> = (0..count)
            .map(|i| {
                // 192.x.y.0/24 — unicast space that should never appear in a
                // multicast routing table.
                Prefix::new(
                    Ip(Ip::new(192, 0, 0, 0).0 + ((i / 256) << 16) + ((i % 256) << 8)),
                    24,
                )
                .expect("valid /24")
            })
            .collect();
        e.inject(prefixes.iter().copied(), 1, router, IfaceId(0), now);
        self.injected[router.index()].extend(prefixes);
    }

    /// Withdraws previously injected routes (the leak was fixed): they stop
    /// being refreshed, so the next engine ticks age them out.
    pub fn withdraw_injected(&mut self, router: RouterId, now: SimTime) {
        self.injected[router.index()].clear();
        if let Some(e) = self.dvmrp[router.index()].as_mut() {
            // Injected routes were attributed to `router` itself as a fake
            // neighbor, so a neighbor-down for self withdraws exactly them.
            e.neighbor_down(router, now);
        }
    }

    /// Keeps injected routes alive across ticks (the leak persists until
    /// withdrawn): refreshes them like a received report would.
    pub fn refresh_injected(&mut self, now: SimTime) {
        for i in 0..self.injected.len() {
            if self.injected[i].is_empty() {
                continue;
            }
            let router = RouterId(i as u32);
            let report: Vec<(Prefix, u32)> = self.injected[i].iter().map(|p| (*p, 1)).collect();
            if let Some(e) = self.dvmrp[i].as_mut() {
                e.handle_report(router, IfaceId(0), 0, &report, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Paths
    // ------------------------------------------------------------------

    /// True when the link can carry traffic under `filter`.
    fn link_admits(&self, l: &mantra_topology::Link, filter: LinkFilter) -> bool {
        if !l.up || !self.topo.is_active(l.a.router) || !self.topo.is_active(l.b.router) {
            return false;
        }
        match filter {
            LinkFilter::Any => true,
            LinkFilter::Dvmrp => {
                self.topo.router(l.a.router).suite.dvmrp && self.topo.router(l.b.router).suite.dvmrp
            }
            LinkFilter::Sparse => {
                self.topo.router(l.a.router).suite.pim_sm
                    && self.topo.router(l.b.router).suite.pim_sm
            }
        }
    }

    /// BFS shortest-path tree rooted at `root` over links admitted by
    /// `filter`. Index `i` holds the hop toward the root for router `i`
    /// (`None` for unreachable routers and for the root itself).
    pub fn bfs_tree(&self, root: RouterId, filter: LinkFilter) -> Vec<Option<TreeHop>> {
        let n = self.topo.router_count();
        let mut hops: Vec<Option<TreeHop>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[root.index()] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(r) = queue.pop_front() {
            for (l, local, remote) in self.topo.neighbors(r) {
                if !self.link_admits(l, filter) || visited[remote.router.index()] {
                    continue;
                }
                visited[remote.router.index()] = true;
                hops[remote.router.index()] = Some(TreeHop {
                    parent: r,
                    iface_to_parent: remote.iface,
                    parent_iface: local.iface,
                });
                queue.push_back(remote.router);
            }
        }
        hops
    }

    /// Routers in the same component as `root` under `filter`, including
    /// `root`.
    pub fn component(&self, root: RouterId, filter: LinkFilter) -> Vec<RouterId> {
        let hops = self.bfs_tree(root, filter);
        let mut out = vec![root];
        out.extend(
            hops.iter()
                .enumerate()
                .filter(|(_, h)| h.is_some())
                .map(|(i, _)| RouterId(i as u32)),
        );
        out.sort_unstable();
        out
    }

    /// Convenience: this router's DVMRP route count (reachable only), or
    /// zero when it does not run DVMRP — the Figure 7/8/9 series.
    pub fn dvmrp_route_count(&self, router: RouterId) -> usize {
        self.dvmrp[router.index()]
            .as_ref()
            .map(|e| e.rib.reachable_count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_topology::reference::{mbone_1998, transition_internetwork, TopologyConfig};

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn small_cfg() -> TopologyConfig {
        TopologyConfig {
            domains: 4,
            routers_per_domain: 2,
            leaves_per_router: 1,
            native_fraction: 0.0,
        }
    }

    fn run_rounds(net: &mut Network, rounds: u32, loss: f64, rng: &mut SimRng) -> SimTime {
        let mut now = t0();
        for _ in 0..rounds {
            now += SimDuration::secs(60);
            net.routing_round(now, loss, rng);
        }
        now
    }

    #[test]
    fn dvmrp_converges_on_mbone() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(1);
        run_rounds(&mut net, 6, 0.0, &mut rng);
        // FIXW must reach every leaf /24 and every domain /16.
        let fixw_routes = net.dvmrp_route_count(r.fixw);
        // 4 domains × (2 routers × 1 leaf + 1 border leaf + 1 aggregate) = 16.
        assert_eq!(fixw_routes, 16);
        // UCSB gateway sees the same networks (consistent state, no loss).
        assert_eq!(net.dvmrp_route_count(r.ucsb), 16);
    }

    #[test]
    fn report_loss_causes_inconsistency_and_flaps() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 8);
        let mut rng = SimRng::seeded(2);
        run_rounds(&mut net, 6, 0.0, &mut rng);
        let stable = net.dvmrp_route_count(r.fixw);
        // Heavy loss: counts dip below the converged value at least once.
        let mut dipped = false;
        let mut now = t0() + SimDuration::secs(360);
        for _ in 0..40 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.4, &mut rng);
            if net.dvmrp_route_count(r.fixw) < stable {
                dipped = true;
            }
        }
        assert!(dipped, "loss should cause visible route flaps");
    }

    #[test]
    fn link_down_withdraws_and_recovery_relearns() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(3);
        let mut now = run_rounds(&mut net, 6, 0.0, &mut rng);
        let full = net.dvmrp_route_count(r.fixw);
        let link = net.topo.link_between(r.fixw, r.ucsb).unwrap().id;
        net.on_link_change(link, false, now);
        assert!(net.dvmrp_route_count(r.fixw) < full, "immediate withdrawal");
        net.on_link_change(link, true, now);
        for _ in 0..6 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        assert_eq!(net.dvmrp_route_count(r.fixw), full, "relearned after flap");
    }

    #[test]
    fn injection_spike_and_withdrawal() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(4);
        let mut now = run_rounds(&mut net, 6, 0.0, &mut rng);
        let base = net.dvmrp_route_count(r.ucsb);
        net.inject_unicast_routes(r.ucsb, 500, now);
        assert_eq!(net.dvmrp_route_count(r.ucsb), base + 500);
        // The leak persists across rounds while refreshed.
        for _ in 0..4 {
            now += SimDuration::secs(60);
            net.refresh_injected(now);
            net.routing_round(now, 0.0, &mut rng);
        }
        assert_eq!(net.dvmrp_route_count(r.ucsb), base + 500);
        // Withdrawal drops the spike immediately.
        net.withdraw_injected(r.ucsb, now);
        assert_eq!(net.dvmrp_route_count(r.ucsb), base);
    }

    #[test]
    fn transition_creates_mbgp_and_msdp_meshes() {
        let cfg = TopologyConfig {
            domains: 6,
            native_fraction: 0.5,
            ..small_cfg()
        };
        let r = transition_internetwork(&cfg);
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        // round(6 × 0.5) = 3 native indices, but index 0 is always the
        // DVMRP UCSB domain, leaving two native borders.
        assert_eq!(
            net.mbgp_peerings.len(),
            2,
            "one MBGP session per native border"
        );
        // MSDP: FIXW hub + 2 native RPs = 2 spokes.
        assert_eq!(net.msdp_peerings.len(), 2);
        let mut rng = SimRng::seeded(5);
        let mut now = t0();
        for _ in 0..4 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        // FIXW's MBGP RIB carries the native domains' prefixes.
        let fixw_mbgp = net.mbgp[r.fixw.index()].as_ref().unwrap();
        assert!(
            fixw_mbgp.route_count() >= 3,
            "rib = {}",
            fixw_mbgp.route_count()
        );
        // And a native border's RIB learned FIXW-side routes transitively.
        let native_border = net
            .topo
            .domains()
            .iter()
            .find(|d| d.protocol == mantra_topology::DomainProtocol::NativeSparse)
            .and_then(|d| d.border)
            .unwrap();
        assert!(
            net.mbgp[native_border.index()]
                .as_ref()
                .unwrap()
                .route_count()
                >= 3
        );
    }

    #[test]
    fn bfs_tree_and_component_respect_filters() {
        let cfg = TopologyConfig {
            domains: 4,
            native_fraction: 0.5,
            ..small_cfg()
        };
        let r = transition_internetwork(&cfg);
        let net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let dv = net.component(r.fixw, LinkFilter::Dvmrp);
        let sp = net.component(r.fixw, LinkFilter::Sparse);
        let all = net.component(r.fixw, LinkFilter::Any);
        assert!(dv.len() > 1);
        assert!(sp.len() > 1);
        assert!(all.len() >= dv.len());
        assert!(all.len() >= sp.len());
        assert_eq!(all.len(), net.topo.router_count());
        // DVMRP and sparse components only share FIXW (the border).
        let overlap: Vec<_> = dv.iter().filter(|x| sp.contains(x)).collect();
        assert_eq!(overlap, vec![&r.fixw]);
        // Hops lead back to the root.
        let hops = net.bfs_tree(r.fixw, LinkFilter::Any);
        let mut cur = r.ucsb;
        let mut steps = 0;
        while cur != r.fixw {
            cur = hops[cur.index()].expect("reachable").parent;
            steps += 1;
            assert!(steps < 10);
        }
    }

    #[test]
    fn router_leave_and_rejoin_reconverge() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(6);
        let mut now = run_rounds(&mut net, 6, 0.0, &mut rng);
        let full = net.dvmrp_route_count(r.fixw);
        let ucsb_links: Vec<LinkId> = net
            .topo
            .links_of(r.ucsb)
            .filter(|l| l.up)
            .map(|l| l.id)
            .collect();
        net.router_leave(r.ucsb, now);
        assert!(!net.topo.is_active(r.ucsb));
        assert!(net.dvmrp[r.ucsb.index()].is_none(), "engines dropped");
        assert!(ucsb_links.iter().all(|l| !net.topo.link(*l).up));
        assert!(
            net.dvmrp_route_count(r.fixw) < full,
            "neighbors withdraw immediately"
        );
        net.router_leave(r.ucsb, now); // idempotent
        let full_ucsb = full; // symmetric convergence earlier in the test
        net.router_join(r.ucsb, now);
        assert!(net.topo.is_active(r.ucsb));
        assert!(ucsb_links.iter().all(|l| net.topo.link(*l).up));
        assert!(
            net.dvmrp_route_count(r.ucsb) < full_ucsb,
            "rejoin boots cold with only originated prefixes"
        );
        now = {
            let mut t = now;
            for _ in 0..8 {
                t += SimDuration::secs(60);
                net.routing_round(t, 0.0, &mut rng);
            }
            t
        };
        assert_eq!(net.dvmrp_route_count(r.fixw), full, "reconverged");
        let _ = now;
    }

    #[test]
    fn partition_and_heal_restore_exact_cut() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(7);
        let mut now = run_rounds(&mut net, 6, 0.0, &mut rng);
        let full = net.dvmrp_route_count(r.fixw);
        let dom = net.topo.router(r.ucsb).domain;
        net.partition(&[dom], now);
        assert!(net.partition_cut_len() > 0);
        assert!(net.dvmrp_route_count(r.fixw) < full);
        let reachable = net.component(r.fixw, LinkFilter::Any);
        assert!(!reachable.contains(&r.ucsb), "ucsb side is unreachable");
        net.heal(now);
        assert_eq!(net.partition_cut_len(), 0);
        for _ in 0..8 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        assert_eq!(net.dvmrp_route_count(r.fixw), full, "healed and relearned");
    }

    #[test]
    fn migration_rebuild_swaps_engines() {
        let r = mbone_1998(&small_cfg());
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let dom = net.topo.router(r.ucsb).domain;
        assert!(net.dvmrp[r.ucsb.index()].is_some());
        assert!(net.pim_sm[r.ucsb.index()].is_none());
        net.topo.migrate_domain_to_sparse(dom);
        net.rebuild_control_plane(t0());
        // Border keeps DVMRP and gains PIM-SM.
        assert!(net.dvmrp[r.ucsb.index()].is_some());
        assert!(net.pim_sm[r.ucsb.index()].is_some());
        assert!(net.msdp[r.ucsb.index()].is_some());
        // Internal routers lose DVMRP entirely.
        let internal = net
            .topo
            .domain(dom)
            .routers
            .iter()
            .copied()
            .find(|x| *x != r.ucsb)
            .unwrap();
        assert!(net.dvmrp[internal.index()].is_none());
        assert!(net.pim_sm[internal.index()].is_some());
    }
}
