//! The discrete-event core: a time-ordered queue with deterministic
//! tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mantra_net::{DomainId, GroupAddr, HostId, SimDuration, SimTime};
use mantra_topology::LinkId;

use crate::churn::ChurnEvent;
use crate::workload::{ParticipantPlan, SessionPlan};

/// Everything that can happen in a scenario.
#[derive(Clone, Debug)]
pub enum Event {
    /// Draw the next batch of session arrivals from the workload model.
    SessionArrival,
    /// Instantiate a planned session now.
    SessionCreate(Box<SessionPlan>),
    /// A specific session ends (all participants leave, state decays).
    SessionEnd {
        /// The ending session's group.
        group: GroupAddr,
    },
    /// A planned participant joins a session.
    ParticipantJoin {
        /// The session's group.
        group: GroupAddr,
        /// The planned attachment, rate and departure.
        plan: Box<ParticipantPlan>,
    },
    /// A participant leaves a session.
    ParticipantLeave {
        /// The session's group.
        group: GroupAddr,
        /// The leaving host.
        host: HostId,
    },
    /// One monitoring/routing tick: exchange routes, rebuild trees,
    /// account traffic. Scheduled periodically by the scenario.
    Tick,
    /// Take a link down or up (flap/decommission injection).
    SetLink {
        /// The affected link.
        link: LinkId,
        /// Whether it comes up (`true`) or goes down.
        up: bool,
    },
    /// Migrate a domain to native sparse mode (the transition).
    MigrateDomain {
        /// The migrating domain.
        domain: DomainId,
        /// When `true`, the border also drops DVMRP entirely (the
        /// decommissioning that drives Figure 8's long-term decline).
        full: bool,
    },
    /// Launch a scheduled broadcast event (the 43rd IETF).
    Broadcast {
        /// Event duration.
        duration: SimDuration,
        /// Audience size.
        audience: usize,
    },
    /// Begin injecting unicast routes into a router's DVMRP table
    /// (the Figure 9 anomaly).
    InjectRoutes {
        /// How many foreign /24s leak in.
        count: u32,
    },
    /// The leaked routes are withdrawn (the operator fixed the leak).
    WithdrawInjected,
    /// A topology-churn mutation: routers joining/leaving, links flapping,
    /// partitions forming and healing. See [`crate::churn`].
    Churn(ChurnEvent),
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // insertion sequence breaking ties deterministically.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Event::Tick);
        q.schedule(t(10), Event::SessionArrival);
        q.schedule(t(20), Event::WithdrawInjected);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(at, _)| at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(t(5), Event::InjectRoutes { count: 1 });
        q.schedule(t(5), Event::InjectRoutes { count: 2 });
        q.schedule(t(5), Event::InjectRoutes { count: 3 });
        let counts: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::InjectRoutes { count } => count,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(9), Event::Tick);
        q.schedule(t(3), Event::Tick);
        assert_eq!(q.peek_time(), Some(t(3)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }
}
