//! The simulation driver and the paper's evaluation scenarios.
//!
//! [`Simulation`] owns the network, the session registry, the workload and
//! the event queue, and advances virtual time. Scenario constructors wire
//! up the timelines behind each figure:
//!
//! * [`Scenario::fixw_six_months`] — Nov 1998 → Apr 1999 at FIXW + UCSB,
//!   with the 43rd IETF in early December and the sparse-mode transition
//!   migrating domains from February on (Figures 3–7),
//! * [`Scenario::dvmrp_two_years`] — the 24-month DVMRP decline
//!   (Figure 8),
//! * [`Scenario::ucsb_injection_day`] — 1998-10-14 at the UCSB `mrouted`,
//!   with the 14:00 unicast route injection (Figure 9).

use mantra_net::{RouterId, SimDuration, SimTime};
use mantra_protocols::dvmrp::DvmrpTimers;
use mantra_topology::reference::{
    fleet_internetwork, mbone_1998, transition_internetwork, ucsb_campus, ReferenceTopology,
    TopologyConfig,
};
use mantra_topology::ProtocolSuite;

use crate::churn::{ChurnEvent, ChurnProfile, ChurnSchedule};
use crate::event::{Event, EventQueue};
use crate::network::Network;
use crate::rng::SimRng;
use crate::session::SessionRegistry;
use crate::trees::TreeBuilder;
use crate::workload::{Workload, WorkloadConfig};

/// Simulation-wide knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; every run with the same seed is identical.
    pub seed: u64,
    /// Scenario start.
    pub start: SimTime,
    /// Scenario end (events after this are ignored).
    pub end: SimTime,
    /// Routing/monitoring tick (the cadence router state evolves at).
    pub tick: SimDuration,
    /// Per-round probability of losing one DVMRP report.
    pub report_loss: f64,
    /// Synthetic extra /24s each domain border advertises (table realism).
    pub extra_prefixes_per_domain: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1998,
            start: SimTime::from_ymd(1998, 11, 1),
            end: SimTime::from_ymd(1999, 4, 30),
            tick: SimDuration::mins(15),
            report_loss: 0.02,
            extra_prefixes_per_domain: 40,
        }
    }
}

/// A fully wired scenario ready to run.
pub struct Scenario {
    /// The simulation.
    pub sim: Simulation,
    /// The FIXW-equivalent collection point.
    pub fixw: RouterId,
    /// The UCSB-equivalent collection point.
    pub ucsb: RouterId,
}

/// The discrete-event simulation.
pub struct Simulation {
    /// The live network (topology + protocol engines + MFIBs).
    pub net: Network,
    /// Ground-truth sessions.
    pub sessions: SessionRegistry,
    /// Current virtual time.
    pub clock: SimTime,
    /// Routers whose forwarding state is materialised and scrapeable.
    pub monitored: Vec<RouterId>,
    cfg: SimConfig,
    queue: EventQueue,
    workload: Workload,
    trees: TreeBuilder,
    fault_rng: SimRng,
    injection_target: RouterId,
    ticks_run: u64,
    churn: ChurnSchedule,
}

impl Simulation {
    /// Builds a simulation over `reference`, monitoring `monitored`.
    pub fn new(
        reference: ReferenceTopology,
        monitored: Vec<RouterId>,
        cfg: SimConfig,
        wl_cfg: WorkloadConfig,
    ) -> Self {
        let mut master = SimRng::seeded(cfg.seed);
        let wl_rng = master.fork(1);
        let fault_rng = master.fork(2);
        let timers = DvmrpTimers::scaled_to(cfg.tick);
        let net = Network::new(
            reference.topo,
            cfg.start,
            timers,
            cfg.extra_prefixes_per_domain,
        );
        let workload = Workload::new(wl_cfg, &net.topo, wl_rng);
        let injection_target = *monitored.first().expect("at least one monitored router");
        let mut sim = Simulation {
            net,
            sessions: SessionRegistry::new(),
            clock: cfg.start,
            monitored,
            cfg,
            queue: EventQueue::new(),
            workload,
            trees: TreeBuilder::new(),
            fault_rng,
            injection_target,
            ticks_run: 0,
            churn: ChurnSchedule::default(),
        };
        // Recurring machinery.
        let first_arrival = sim.cfg.start + sim.workload.next_arrival_delay(sim.cfg.start);
        sim.queue.schedule(first_arrival, Event::SessionArrival);
        sim.queue
            .schedule(sim.cfg.start + sim.cfg.tick, Event::Tick);
        sim
    }

    /// The router targeted by route-injection anomalies.
    pub fn set_injection_target(&mut self, r: RouterId) {
        self.injection_target = r;
    }

    /// Adjusts the per-round DVMRP report-loss probability (drives route
    /// instability and inter-router inconsistency).
    pub fn set_report_loss(&mut self, loss: f64) {
        self.cfg.report_loss = loss.clamp(0.0, 1.0);
    }

    /// Schedules a scenario event at an absolute time.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.queue.schedule(at, event);
    }

    /// Installs a churn schedule: every entry is queued as an
    /// [`Event::Churn`] and the schedule is kept for event strips. The
    /// schedule draws from its own RNG stream, so installing one never
    /// shifts the workload or fault-injection sequences.
    pub fn install_churn(&mut self, schedule: ChurnSchedule) {
        for e in &schedule.events {
            self.queue.schedule(e.at, Event::Churn(e.event.clone()));
        }
        self.churn = schedule;
    }

    /// The installed churn schedule (empty when none was installed).
    pub fn churn(&self) -> &ChurnSchedule {
        &self.churn
    }

    /// Scenario start time.
    pub fn start_time(&self) -> SimTime {
        self.cfg.start
    }

    /// Advances virtual time to `t`, processing every event up to it.
    pub fn advance_to(&mut self, t: SimTime) {
        let t = t.min(self.cfg.end);
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            self.clock = at;
            self.handle(at, ev);
        }
        self.clock = t;
    }

    /// Runs to the configured end.
    pub fn run_to_end(&mut self) {
        self.advance_to(self.cfg.end);
    }

    /// The configured tick length.
    pub fn tick(&self) -> SimDuration {
        self.cfg.tick
    }

    /// Scenario end time.
    pub fn end_time(&self) -> SimTime {
        self.cfg.end
    }

    /// Number of ticks processed so far.
    pub fn ticks_run(&self) -> u64 {
        self.ticks_run
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::SessionArrival => {
                for plan in self.workload.draw_sessions(now) {
                    let at = now + plan.start_offset;
                    self.queue
                        .schedule(at, Event::SessionCreate(Box::new(plan)));
                }
                let next = now + self.workload.next_arrival_delay(now);
                if next <= self.cfg.end {
                    self.queue.schedule(next, Event::SessionArrival);
                }
            }
            Event::SessionCreate(plan) => {
                let group = self.sessions.create(plan.kind, now);
                self.queue
                    .schedule(now + plan.lifetime, Event::SessionEnd { group });
                for p in plan.participants {
                    self.queue.schedule(
                        now + p.join_offset,
                        Event::ParticipantJoin {
                            group,
                            plan: Box::new(p),
                        },
                    );
                }
            }
            Event::ParticipantJoin { group, plan } => {
                let Some(host) = self.sessions.join(
                    group,
                    plan.router,
                    plan.iface,
                    plan.leaf_addr,
                    plan.rate,
                    now,
                ) else {
                    return; // session already ended
                };
                self.net.igmp[plan.router.index()].join(plan.iface, group, host, now);
                let stay = SimDuration::secs(
                    plan.leave_offset
                        .as_secs()
                        .saturating_sub(plan.join_offset.as_secs())
                        .max(1),
                );
                self.queue
                    .schedule(now + stay, Event::ParticipantLeave { group, host });
            }
            Event::ParticipantLeave { group, host } => {
                if let Some(p) = self.sessions.leave(group, host) {
                    self.net.igmp[p.router.index()].leave(p.iface, group, host);
                }
            }
            Event::SessionEnd { group } => {
                if let Some(s) = self.sessions.end(group) {
                    for p in s.participants.values() {
                        self.net.igmp[p.router.index()].leave(p.iface, group, p.host);
                    }
                }
            }
            Event::Tick => {
                self.ticks_run += 1;
                self.net.refresh_injected(now);
                self.net
                    .routing_round(now, self.cfg.report_loss, &mut self.fault_rng);
                self.trees.rebuild(
                    &mut self.net,
                    &self.sessions,
                    &self.monitored.clone(),
                    now,
                    self.cfg.tick,
                );
                let next = now + self.cfg.tick;
                if next <= self.cfg.end {
                    self.queue.schedule(next, Event::Tick);
                }
            }
            Event::SetLink { link, up } => {
                self.net.on_link_change(link, up, now);
            }
            Event::MigrateDomain { domain, full } => {
                self.net.topo.migrate_domain_to_sparse(domain);
                if full {
                    if let Some(border) = self.net.topo.domain(domain).border {
                        self.net.topo.router_mut(border).suite = ProtocolSuite::native_sparse(true);
                    }
                }
                self.net.rebuild_control_plane(now);
            }
            Event::Broadcast { duration, audience } => {
                let plan = self.workload.broadcast_event(duration, audience);
                self.queue
                    .schedule(now, Event::SessionCreate(Box::new(plan)));
            }
            Event::InjectRoutes { count } => {
                self.net
                    .inject_unicast_routes(self.injection_target, count, now);
            }
            Event::WithdrawInjected => {
                self.net.withdraw_injected(self.injection_target, now);
            }
            Event::Churn(c) => self.apply_churn(c, now),
        }
    }

    /// Applies one churn mutation. Guards make arbitrary (property-derived)
    /// sequences safe: joining an active router or flapping a link of an
    /// offline one is a no-op.
    fn apply_churn(&mut self, c: ChurnEvent, now: SimTime) {
        match c {
            ChurnEvent::RouterLeave(r) => self.net.router_leave(r, now),
            ChurnEvent::RouterJoin(r) => self.net.router_join(r, now),
            ChurnEvent::LinkDown(l) => {
                let link = self.net.topo.link(l);
                if link.up {
                    self.net.on_link_change(l, false, now);
                }
            }
            ChurnEvent::LinkUp(l) => {
                let link = self.net.topo.link(l);
                if !link.up
                    && self.net.topo.is_active(link.a.router)
                    && self.net.topo.is_active(link.b.router)
                {
                    self.net.on_link_change(l, true, now);
                }
            }
            ChurnEvent::Partition { domains } => self.net.partition(&domains, now),
            ChurnEvent::Heal => self.net.heal(now),
        }
    }
}

impl Scenario {
    /// The headline scenario: six months at FIXW and UCSB spanning the
    /// sparse-mode transition, with the IETF broadcast in early December.
    pub fn fixw_six_months(seed: u64) -> Scenario {
        Scenario::fixw_six_months_with(seed, SimConfig::default().tick)
    }

    /// [`Scenario::fixw_six_months`] with an explicit collection tick —
    /// coarser ticks trade temporal resolution for run time (protocol
    /// timers rescale automatically), preserving every figure's shape.
    pub fn fixw_six_months_with(seed: u64, tick: SimDuration) -> Scenario {
        let topo_cfg = TopologyConfig {
            domains: 12,
            routers_per_domain: 3,
            leaves_per_router: 2,
            native_fraction: 0.0,
        };
        let r = mbone_1998(&topo_cfg);
        let cfg = SimConfig {
            seed,
            tick,
            ..SimConfig::default()
        };
        let monitored = vec![r.fixw, r.ucsb];
        let member_domains = r.member_domains.clone();
        let (fixw, ucsb) = (r.fixw, r.ucsb);
        let mut sim = Simulation::new(r, monitored, cfg, WorkloadConfig::default());
        // The 43rd IETF: 1998-12-07, five days, large audience.
        sim.schedule(
            SimTime::from_ymd(1998, 12, 7),
            Event::Broadcast {
                duration: SimDuration::days(5),
                audience: 250,
            },
        );
        // The transition: from February 1999, one member domain migrates
        // to native sparse mode every ~10 days (UCSB, index 0, stays on
        // mrouted throughout, as it did historically).
        for (i, d) in member_domains.iter().enumerate().skip(1) {
            let when = SimTime::from_ymd(1999, 2, 1) + SimDuration::days(10 * (i as u64 - 1));
            sim.schedule(
                when,
                Event::MigrateDomain {
                    domain: *d,
                    full: false,
                },
            );
        }
        Scenario { sim, fixw, ucsb }
    }

    /// The 24-month DVMRP-decline scenario behind Figure 8: domains first
    /// migrate to native sparse mode, then decommission DVMRP entirely.
    pub fn dvmrp_two_years(seed: u64) -> Scenario {
        let topo_cfg = TopologyConfig {
            domains: 12,
            routers_per_domain: 2,
            leaves_per_router: 2,
            native_fraction: 0.0,
        };
        let r = mbone_1998(&topo_cfg);
        let cfg = SimConfig {
            seed,
            start: SimTime::from_ymd(1998, 11, 1),
            end: SimTime::from_ymd(2000, 11, 1),
            tick: SimDuration::hours(6),
            report_loss: 0.02,
            extra_prefixes_per_domain: 40,
        };
        let monitored = vec![r.fixw];
        let member_domains = r.member_domains.clone();
        let (fixw, ucsb) = (r.fixw, r.ucsb);
        // Light workload: this scenario is about routes, not sessions.
        let wl = WorkloadConfig {
            experimental_per_hour: 4.0,
            content_per_hour: 0.5,
            storms_per_day: 0.2,
            ..WorkloadConfig::default()
        };
        let mut sim = Simulation::new(r, monitored, cfg, wl);
        // Phase 1 (Feb–Jul 1999): migrate to native, borders keep DVMRP.
        for (i, d) in member_domains.iter().enumerate().skip(1) {
            let when = SimTime::from_ymd(1999, 2, 1) + SimDuration::days(14 * (i as u64 - 1));
            sim.schedule(
                when,
                Event::MigrateDomain {
                    domain: *d,
                    full: false,
                },
            );
        }
        // Phase 2 (Jan–Oct 2000): decommission DVMRP border by border;
        // UCSB goes last.
        for (i, d) in member_domains.iter().enumerate().skip(1) {
            let when = SimTime::from_ymd(2000, 1, 15) + SimDuration::days(20 * (i as u64 - 1));
            sim.schedule(
                when,
                Event::MigrateDomain {
                    domain: *d,
                    full: true,
                },
            );
        }
        sim.schedule(
            SimTime::from_ymd(2000, 10, 1),
            Event::MigrateDomain {
                domain: member_domains[0],
                full: true,
            },
        );
        Scenario { sim, fixw, ucsb }
    }

    /// One day at the UCSB campus `mrouted` — 1998-10-14 — with unicast
    /// routes injected at 14:00 and withdrawn ~75 minutes later (Figure 9).
    pub fn ucsb_injection_day(seed: u64) -> Scenario {
        let topo_cfg = TopologyConfig {
            domains: 1,
            routers_per_domain: 4,
            leaves_per_router: 3,
            native_fraction: 0.0,
        };
        let r = ucsb_campus(&topo_cfg);
        let start = SimTime::from_ymd(1998, 10, 14);
        let cfg = SimConfig {
            seed,
            start,
            end: start + SimDuration::days(1),
            tick: SimDuration::mins(5),
            report_loss: 0.01,
            extra_prefixes_per_domain: 60,
        };
        let monitored = vec![r.ucsb];
        let (fixw, ucsb) = (r.fixw, r.ucsb);
        let wl = WorkloadConfig {
            experimental_per_hour: 6.0,
            content_per_hour: 1.0,
            storms_per_day: 0.0,
            ..WorkloadConfig::default()
        };
        let mut sim = Simulation::new(r, monitored, cfg, wl);
        sim.schedule(
            start + SimDuration::hours(14),
            Event::InjectRoutes { count: 2_200 },
        );
        sim.schedule(
            start + SimDuration::hours(15) + SimDuration::mins(15),
            Event::WithdrawInjected,
        );
        Scenario { sim, fixw, ucsb }
    }

    /// The fleet-scale world: a transition internetwork sized to roughly
    /// `target_routers` routers (see `fleet_internetwork`), every router
    /// monitored, driven by the fleet-scale workload preset. This is the
    /// scenario behind the sharded-monitor evaluation — coarse hourly
    /// ticks over a 30-day window keep a 2000-router run tractable while
    /// the workload accumulates participant joins into the millions.
    pub fn fleet_snapshot(seed: u64, target_routers: usize, native_fraction: f64) -> Scenario {
        let r = fleet_internetwork(target_routers, native_fraction);
        let start = SimTime::from_ymd(1999, 3, 1);
        let cfg = SimConfig {
            seed,
            start,
            end: start + SimDuration::days(30),
            tick: SimDuration::hours(1),
            report_loss: 0.02,
            // Fleet domains advertise fewer synthetic extras: table realism
            // comes from the domain count itself at this scale.
            extra_prefixes_per_domain: 4,
        };
        let monitored: Vec<RouterId> = r.topo.routers().iter().map(|router| router.id).collect();
        let (fixw, ucsb) = (r.fixw, r.ucsb);
        let sim = Simulation::new(r, monitored, cfg, WorkloadConfig::fleet_scale(1.0));
        Scenario { sim, fixw, ucsb }
    }

    /// A mid-transition snapshot world (used by examples/tests): part of
    /// the infrastructure native from the start.
    pub fn transition_snapshot(seed: u64, native_fraction: f64) -> Scenario {
        let topo_cfg = TopologyConfig {
            domains: 10,
            routers_per_domain: 2,
            leaves_per_router: 2,
            native_fraction,
        };
        let r = transition_internetwork(&topo_cfg);
        let start = SimTime::from_ymd(1999, 3, 1);
        let cfg = SimConfig {
            seed,
            start,
            end: start + SimDuration::days(7),
            ..SimConfig::default()
        };
        let monitored = vec![r.fixw, r.ucsb];
        let (fixw, ucsb) = (r.fixw, r.ucsb);
        let sim = Simulation::new(r, monitored, cfg, WorkloadConfig::default());
        Scenario { sim, fixw, ucsb }
    }

    /// Installs a profile-shaped churn schedule over the scenario window
    /// and returns it (for event strips). The FIXW-equivalent exchange
    /// router is protected — the collection point itself never churns —
    /// but everything else, including other monitored routers, is fair
    /// game. Deterministic in `(profile, seed)`.
    pub fn with_churn(&mut self, profile: ChurnProfile, seed: u64) -> ChurnSchedule {
        let schedule = ChurnSchedule::generate(
            profile,
            seed,
            &self.sim.net.topo,
            &[self.fixw],
            self.sim.start_time(),
            self.sim.end_time(),
        );
        self.sim.install_churn(schedule.clone());
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::rate::SENDER_THRESHOLD;

    #[test]
    fn one_day_smoke_run_produces_state_at_fixw() {
        let mut sc = Scenario::fixw_six_months(7);
        let day1 = SimTime::from_ymd(1998, 11, 2);
        sc.sim.advance_to(day1);
        assert_eq!(sc.sim.clock, day1);
        assert!(sc.sim.ticks_run() >= 90);
        // Ground truth: sessions exist.
        assert!(
            sc.sim.sessions.len() > 10,
            "sessions {}",
            sc.sim.sessions.len()
        );
        // FIXW's MFIB sees flood-and-prune state for remote sessions.
        let mfib = &sc.sim.net.mfib[sc.fixw.index()];
        assert!(mfib.len() > 10, "fixw mfib {}", mfib.len());
        assert!(mfib.group_count() > 5);
        // DVMRP routes converged at both points.
        assert!(sc.sim.net.dvmrp_route_count(sc.fixw) > 100);
        assert!(sc.sim.net.dvmrp_route_count(sc.ucsb) > 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sc = Scenario::fixw_six_months(seed);
            sc.sim.advance_to(SimTime::from_ymd(1998, 11, 3));
            (
                sc.sim.sessions.len(),
                sc.sim.sessions.participant_count(),
                sc.sim.net.mfib[sc.fixw.index()].len(),
                sc.sim.net.dvmrp_route_count(sc.fixw),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn injection_day_has_spike_and_recovery() {
        let mut sc = Scenario::ucsb_injection_day(5);
        let start = SimTime::from_ymd(1998, 10, 14);
        sc.sim.advance_to(start + SimDuration::hours(13));
        let before = sc.sim.net.dvmrp_route_count(sc.ucsb);
        sc.sim.advance_to(start + SimDuration::hours(15));
        let during = sc.sim.net.dvmrp_route_count(sc.ucsb);
        sc.sim.advance_to(start + SimDuration::hours(18));
        let after = sc.sim.net.dvmrp_route_count(sc.ucsb);
        assert!(during > before + 2_000, "spike: {before} -> {during}");
        assert!(after < before + 200, "recovery: {after} vs {before}");
    }

    #[test]
    fn transition_reduces_fixw_visibility_share() {
        // Run two one-week worlds with identical workload seeds: all-DVMRP
        // versus majority-native, and compare what FIXW sees against the
        // ground truth.
        let visible_share = |native: f64| {
            let mut sc = Scenario::transition_snapshot(11, native);
            let end = SimTime::from_ymd(1999, 3, 3);
            sc.sim.advance_to(end);
            let truth = sc.sim.sessions.len().max(1);
            let seen = sc.sim.net.mfib[sc.fixw.index()].group_count();
            seen as f64 / truth as f64
        };
        let dvmrp_share = visible_share(0.0);
        let native_share = visible_share(0.8);
        assert!(
            dvmrp_share > native_share + 0.1,
            "sparse filtering must reduce visibility: {dvmrp_share:.2} vs {native_share:.2}"
        );
    }

    #[test]
    fn fleet_snapshot_monitors_every_router() {
        let mut sc = Scenario::fleet_snapshot(13, 50, 0.5);
        assert_eq!(sc.sim.monitored.len(), sc.sim.net.topo.router_count());
        assert_eq!(sc.sim.net.topo.router_count(), 49);
        let start = SimTime::from_ymd(1999, 3, 1);
        sc.sim.advance_to(start + SimDuration::hours(6));
        assert!(sc.sim.ticks_run() >= 6);
        // The fleet workload is dense: hundreds of sessions within hours.
        assert!(
            sc.sim.sessions.len() > 200,
            "sessions {}",
            sc.sim.sessions.len()
        );
    }

    #[test]
    fn churned_scenario_is_deterministic_and_changes_state() {
        // Sample route counts and down-router counts every 12 hours across
        // the window so short-lived flaps can't slip between observations.
        let run = |churn: bool| {
            let mut sc = Scenario::transition_snapshot(21, 0.4);
            if churn {
                let sched = sc.with_churn(ChurnProfile::Flappy, 21);
                assert!(!sched.is_empty());
                assert_eq!(sc.sim.churn().len(), sched.len());
            }
            let mut routes = Vec::new();
            let mut down = Vec::new();
            let mut at = sc.sim.start_time();
            let end = sc.sim.end_time();
            while at < end {
                at += SimDuration::hours(12);
                sc.sim.advance_to(at);
                routes.push(sc.sim.net.dvmrp_route_count(sc.fixw));
                down.push(
                    sc.sim
                        .net
                        .topo
                        .routers()
                        .iter()
                        .filter(|r| !r.active)
                        .count(),
                );
            }
            (sc.sim.sessions.len(), routes, down)
        };
        assert_eq!(run(true), run(true), "same seed, same churned world");
        let (quiet_sessions, quiet_routes, quiet_down) = run(false);
        let (churn_sessions, churn_routes, churn_down) = run(true);
        // Churn must not disturb the workload stream...
        assert_eq!(quiet_sessions, churn_sessions);
        assert!(quiet_down.iter().all(|d| *d == 0));
        // ...but captures genuinely change: routes differ at some sample or
        // a router is observably gone.
        assert!(
            churn_routes != quiet_routes || churn_down.iter().any(|d| *d > 0),
            "churn changed nothing across the window"
        );
    }

    #[test]
    fn senders_are_minority_of_participants() {
        let mut sc = Scenario::fixw_six_months(3);
        sc.sim.advance_to(SimTime::from_ymd(1998, 11, 3));
        let total = sc.sim.sessions.participant_count();
        let senders: usize = sc
            .sim
            .sessions
            .iter()
            .map(|s| s.senders(SENDER_THRESHOLD).count())
            .sum();
        assert!(total > 0);
        assert!(
            (senders as f64) < 0.5 * total as f64,
            "senders {senders} / participants {total}"
        );
        assert!(senders > 0);
    }

    #[test]
    fn broadcast_event_raises_participants() {
        // A compressed IETF on a channel-free workload so the scheduled
        // event is the only big session, on a window short enough for a
        // unit test.
        let topo_cfg = mantra_topology::reference::TopologyConfig {
            domains: 8,
            routers_per_domain: 2,
            leaves_per_router: 2,
            native_fraction: 0.0,
        };
        let r = mbone_1998(&topo_cfg);
        let start = SimTime::from_ymd(1999, 3, 1);
        let cfg = SimConfig {
            seed: 9,
            start,
            end: start + SimDuration::days(7),
            ..SimConfig::default()
        };
        let monitored = vec![r.fixw];
        let wl = WorkloadConfig {
            channels_per_hour: 0.0,
            ..WorkloadConfig::default()
        };
        let mut sim = Simulation::new(r, monitored, cfg, wl);
        sim.schedule(
            start + SimDuration::days(2),
            crate::event::Event::Broadcast {
                duration: SimDuration::days(4),
                audience: 250,
            },
        );
        sim.advance_to(start + SimDuration::days(2));
        let before = sim.sessions.participant_count();
        sim.advance_to(start + SimDuration::days(4));
        let during = sim.sessions.participant_count();
        assert!(
            during > before + 80,
            "broadcast audience visible: {before} -> {during}"
        );
        // And the big session dominates density.
        let max_density = sim.sessions.iter().map(|s| s.density()).max().unwrap();
        assert!(max_density > 80, "max density {max_density}");
    }
}
