//! Deterministic randomness and the distributions the workload models draw
//! from.
//!
//! Everything in the simulator is reproducible from a single `u64` seed.
//! The heavy-tailed distributions (Pareto session lifetimes, Zipf group
//! popularity) are implemented directly from inverse-CDF sampling on top of
//! `rand`'s uniform generator, so no extra distribution crates are needed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The simulator's random source. A thin wrapper so call sites read as
/// domain operations rather than generic RNG calls.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a seed; the same seed reproduces an entire
    /// scenario bit-for-bit.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream (used to decouple workload
    /// randomness from failure-injection randomness so toggling one does
    /// not shift the other).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seeded(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponential variate with the given mean (inverse-CDF).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.unit(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Bounded Pareto variate with scale `xm`, shape `alpha`, truncated at
    /// `cap` — session lifetimes: most are short, a few run for days.
    pub fn pareto(&mut self, xm: f64, alpha: f64, cap: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0 && cap >= xm);
        let u = 1.0 - self.unit();
        (xm / u.powf(1.0 / alpha)).min(cap)
    }

    /// Zipf-like rank sample over `n` items with exponent `s`: returns a
    /// rank in `[0, n)` where low ranks are much more likely. Sampled by
    /// inverting the (approximated) Zipf CDF via the harmonic integral.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        if n == 1 {
            return 0;
        }
        // Integral approximation of the normalising constant.
        let nf = n as f64;
        let u = self.unit();
        let rank = if (s - 1.0).abs() < 1e-9 {
            // H(x) ~ ln(1+x); invert u * ln(1+n) = ln(1+x).
            (u * (1.0 + nf).ln()).exp() - 1.0
        } else {
            // H(x) ~ ((1+x)^(1-s) - 1) / (1-s).
            let h_n = ((1.0 + nf).powf(1.0 - s) - 1.0) / (1.0 - s);
            ((u * h_n * (1.0 - s) + 1.0).powf(1.0 / (1.0 - s))) - 1.0
        };
        (rank.max(0.0) as usize).min(n - 1)
    }

    /// Poisson variate with the given mean (Knuth for small means, normal
    /// approximation above 30 to stay O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            // Normal approximation with continuity correction.
            let g = self.gaussian();
            return (mean + mean.sqrt() * g).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.unit();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Standard normal via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal variate given the mean and sigma of the underlying
    /// normal — sender data rates.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gaussian()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_of_draw_order() {
        let mut a = SimRng::seeded(7);
        let mut fork1 = a.fork(1);
        let mut fork2 = a.fork(2);
        assert_ne!(fork1.unit().to_bits(), fork2.unit().to_bits());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::seeded(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pareto_respects_bounds_and_tail() {
        let mut r = SimRng::seeded(12);
        let mut long = 0;
        for _ in 0..10_000 {
            let v = r.pareto(60.0, 1.2, 86_400.0);
            assert!((60.0..=86_400.0).contains(&v));
            if v > 3_600.0 {
                long += 1;
            }
        }
        // Heavy tail: a meaningful minority exceeds an hour.
        assert!(long > 50 && long < 3_000, "long {long}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = SimRng::seeded(13);
        let n = 50;
        let mut counts = vec![0u32; n];
        for _ in 0..20_000 {
            counts[r.zipf(n, 1.2)] += 1;
        }
        assert!(counts[0] > counts[n / 2] * 3);
        assert!(counts[0] > counts[n - 1]);
        assert_eq!(r.zipf(1, 1.0), 0);
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = SimRng::seeded(14);
        let n = 20_000;
        let m: f64 = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.1, "small mean {m}");
        let m: f64 = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((m - 100.0).abs() < 1.0, "large mean {m}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(15);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::seeded(16);
        for _ in 0..1_000 {
            assert!(r.lognormal(3.0, 1.0) > 0.0);
        }
    }
}
