//! Discrete-event simulation of the late-1990s multicast internetwork.
//!
//! The paper evaluated Mantra against two live routers (FIXW and a UCSB
//! `mrouted`) over six months of real MBone traffic. Neither the routers
//! nor the traffic exist any more, so this crate rebuilds both:
//!
//! * [`rng`] — seeded determinism plus the heavy-tailed distributions the
//!   workload is calibrated with,
//! * [`churn`] — deterministic topology-churn schedules (routers joining
//!   and leaving, link flaps, partitions) with a shrinkable raw-op surface
//!   for systematic testing,
//! * [`event`] — the discrete-event queue,
//! * [`network`] — topology + per-router protocol engines and the
//!   synchronous routing round (DVMRP reports with loss, MBGP syncs,
//!   MSDP SA floods),
//! * [`session`] — ground-truth sessions and participants,
//! * [`workload`] — arrival/lifetime/membership/rate generators calibrated
//!   to the paper's reported statistics,
//! * [`trees`] — distribution-tree computation that turns sessions +
//!   routing state into per-router forwarding tables (flood-and-prune vs
//!   sparse-mode semantics),
//! * [`scenario`] — the wired evaluation scenarios behind Figures 3–9,
//! * [`applayer`] — SAP/RTCP application-layer observers, the comparison
//!   point for the paper's network-layer argument.
//!
//! ## Timing model
//!
//! Protocol state evolves at the monitoring tick (default 15 minutes, the
//! paper's collection interval), with protocol timers rescaled to keep
//! mrouted's refresh/expiry ratios. This is the documented substitution
//! for running every 60-second protocol timer across six simulated months:
//! Mantra can only observe per-snapshot state, so sub-snapshot dynamics are
//! not distinguishable in any figure.

pub mod applayer;
pub mod churn;
pub mod event;
pub mod network;
pub mod rng;
pub mod scenario;
pub mod session;
pub mod trees;
pub mod workload;

pub use applayer::{AppLayerConfig, AppLayerMonitor, AppLayerView};
pub use churn::{ChurnEntry, ChurnEvent, ChurnProfile, ChurnSchedule, RawChurnOp, CHURN_SLOTS};
pub use event::Event;
pub use network::{LinkFilter, Network};
pub use rng::SimRng;
pub use scenario::{Scenario, SimConfig, Simulation};
pub use session::{Session, SessionKind, SessionRegistry};
pub use trees::TreeBuilder;
pub use workload::{Workload, WorkloadConfig};
