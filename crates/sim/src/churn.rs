//! Deterministic topology churn: routers joining and leaving, links
//! flapping, partitions forming and healing mid-scenario.
//!
//! The paper's Mantra watched a fixed FIXW-era topology; this module is what
//! makes the monitored world move. Two entry points produce the same event
//! type:
//!
//! * [`ChurnSchedule::generate`] draws a schedule from a profile
//!   ([`ChurnProfile::Calm`], [`ChurnProfile::Flappy`],
//!   [`ChurnProfile::Partition`]) and a seed. The RNG is its own
//!   [`SimRng`] stream, so installing churn never renumbers the workload or
//!   fault-injection draw sequences of an existing scenario.
//! * [`ChurnSchedule::from_raw`] maps *arbitrary* integer triples onto valid
//!   events. This is the systematic-testing surface: a property test can
//!   hand it any shrinkable `Vec<(u16, u8, u16)>` and always get a
//!   well-formed schedule, so "any churn schedule" is a checkable
//!   quantifier, not a demo.
//!
//! Both paths are pure functions of their inputs and the topology shape —
//! the golden fixture test pins the generated sequence so an accidental
//! reordering of RNG draws shows up as a transcript diff.

use mantra_net::{DomainId, RouterId, SimDuration, SimTime};
use mantra_topology::{LinkId, Topology};

use crate::rng::SimRng;

/// One topology mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A previously departed router powers back on.
    RouterJoin(RouterId),
    /// A router powers off; all its links go down with it.
    RouterLeave(RouterId),
    /// A single link fails.
    LinkDown(LinkId),
    /// A single link recovers.
    LinkUp(LinkId),
    /// The listed domains are split from the rest of the internetwork.
    Partition {
        /// Domains on the far side of the cut.
        domains: Vec<DomainId>,
    },
    /// The current partition cut is restored.
    Heal,
}

/// A churn preset selectable as `mantra monitor --churn <profile>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnProfile {
    /// Occasional link flaps and one slow router outage.
    Calm,
    /// Routers and links bounce constantly with short gaps.
    Flappy,
    /// Whole domains split off and heal, plus background flaps.
    Partition,
}

impl ChurnProfile {
    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "calm" => Some(ChurnProfile::Calm),
            "flappy" => Some(ChurnProfile::Flappy),
            "partition" => Some(ChurnProfile::Partition),
            _ => None,
        }
    }

    /// The CLI name of the profile.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnProfile::Calm => "calm",
            ChurnProfile::Flappy => "flappy",
            ChurnProfile::Partition => "partition",
        }
    }
}

/// The number of equal time slots a scenario window is divided into; raw-op
/// slots are taken modulo this.
pub const CHURN_SLOTS: u16 = 96;

/// An abstract churn instruction `(slot, kind, target)`. Any value is valid:
/// `slot` wraps modulo [`CHURN_SLOTS`], `kind` wraps modulo six, and
/// `target` wraps modulo the relevant candidate list. Property tests shrink
/// these directly.
pub type RawChurnOp = (u16, u8, u16);

/// One scheduled mutation with a human-readable label for event strips.
#[derive(Clone, Debug)]
pub struct ChurnEntry {
    /// When the mutation fires.
    pub at: SimTime,
    /// The mutation itself.
    pub event: ChurnEvent,
    /// Display label (`router ucsb-gw leaves`, `partition {mbone-2}`, …).
    pub label: String,
}

/// A deterministic, time-ordered list of topology mutations.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    /// Events in firing order.
    pub events: Vec<ChurnEntry>,
}

impl ChurnSchedule {
    /// Maps arbitrary raw ops onto a valid schedule over `[start, end)`.
    ///
    /// Routers in `protected` (and domains containing them) are never
    /// churned — the collection point has to stay reachable for captures to
    /// mean anything. With no eligible candidate for an op's kind, the op is
    /// skipped.
    pub fn from_raw(
        raw: &[RawChurnOp],
        topo: &Topology,
        protected: &[RouterId],
        start: SimTime,
        end: SimTime,
    ) -> ChurnSchedule {
        let window = end.0.saturating_sub(start.0).max(1);
        let slot_len = (window / u64::from(CHURN_SLOTS)).max(1);
        let routers: Vec<RouterId> = topo
            .routers()
            .iter()
            .filter(|r| !protected.contains(&r.id))
            .map(|r| r.id)
            .collect();
        let links: Vec<LinkId> = topo.links().iter().map(|l| l.id).collect();
        let domains: Vec<DomainId> = topo
            .domains()
            .iter()
            .filter(|d| !d.routers.iter().any(|r| protected.contains(r)))
            .map(|d| d.id)
            .collect();

        let mut entries: Vec<(u64, usize, ChurnEvent)> = Vec::new();
        for (i, (slot, kind, target)) in raw.iter().enumerate() {
            let at = start.0 + u64::from(slot % CHURN_SLOTS) * slot_len;
            let target = usize::from(*target);
            let event = match kind % 6 {
                0 if !routers.is_empty() => ChurnEvent::RouterLeave(routers[target % routers.len()]),
                1 if !routers.is_empty() => ChurnEvent::RouterJoin(routers[target % routers.len()]),
                2 if !links.is_empty() => ChurnEvent::LinkDown(links[target % links.len()]),
                3 if !links.is_empty() => ChurnEvent::LinkUp(links[target % links.len()]),
                4 if !domains.is_empty() => {
                    // One or two adjacent domains split off together.
                    let first = target % domains.len();
                    let mut doms = vec![domains[first]];
                    if target % 3 == 0 && domains.len() > 1 {
                        doms.push(domains[(first + 1) % domains.len()]);
                        doms.sort_unstable();
                        doms.dedup();
                    }
                    ChurnEvent::Partition { domains: doms }
                }
                5 => ChurnEvent::Heal,
                _ => continue,
            };
            entries.push((at, i, event));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        ChurnSchedule {
            events: entries
                .into_iter()
                .map(|(at, _, event)| {
                    let label = label_for(&event, topo);
                    ChurnEntry {
                        at: SimTime(at),
                        event,
                        label,
                    }
                })
                .collect(),
        }
    }

    /// Draws a profile-shaped schedule from its own seeded RNG stream.
    ///
    /// Incidents are paired — every leave schedules the matching rejoin,
    /// every link-down its recovery, every partition its heal — with
    /// durations long enough (relative to the window) that a monitored
    /// router can pass through `Stale` into `Retired` and come back.
    pub fn generate(
        profile: ChurnProfile,
        seed: u64,
        topo: &Topology,
        protected: &[RouterId],
        start: SimTime,
        end: SimTime,
    ) -> ChurnSchedule {
        // Independent stream: never perturbs workload/fault RNG sequences.
        let mut rng = SimRng::seeded(seed ^ 0xC4_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut raw: Vec<RawChurnOp> = Vec::new();
        let slots = u64::from(CHURN_SLOTS);
        let pair = |rng: &mut SimRng,
                        raw: &mut Vec<RawChurnOp>,
                        down_kind: u8,
                        up_kind: u8,
                        min_dur: u64,
                        max_dur: u64| {
            let slot = rng.range_u64(2, slots - 2);
            let dur = rng.range_u64(min_dur, max_dur);
            let target = rng.range_u64(0, u64::from(u16::MAX)) as u16;
            raw.push((slot as u16, down_kind, target));
            let back = slot + dur;
            if back < slots {
                raw.push((back as u16, up_kind, target));
            }
        };
        match profile {
            ChurnProfile::Calm => {
                for _ in 0..3 {
                    pair(&mut rng, &mut raw, 2, 3, 2, 6); // link flaps
                }
                pair(&mut rng, &mut raw, 0, 1, 8, 20); // one long router outage
            }
            ChurnProfile::Flappy => {
                for _ in 0..6 {
                    pair(&mut rng, &mut raw, 0, 1, 1, 10); // router bounces
                }
                for _ in 0..6 {
                    pair(&mut rng, &mut raw, 2, 3, 1, 4); // link flaps
                }
            }
            ChurnProfile::Partition => {
                for _ in 0..2 {
                    pair(&mut rng, &mut raw, 4, 5, 6, 18); // split + heal
                }
                for _ in 0..2 {
                    pair(&mut rng, &mut raw, 2, 3, 2, 5); // background flaps
                }
                pair(&mut rng, &mut raw, 0, 1, 10, 24); // one router outage
            }
        }
        ChurnSchedule::from_raw(&raw, topo, protected, start, end)
    }

    /// The human-readable event strip: `(time, label)` pairs in firing
    /// order, optionally truncated to events at or before `upto`.
    pub fn strip(&self, upto: Option<SimTime>) -> Vec<(SimTime, String)> {
        self.events
            .iter()
            .filter(|e| upto.map_or(true, |t| e.at <= t))
            .map(|e| (e.at, e.label.clone()))
            .collect()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn label_for(event: &ChurnEvent, topo: &Topology) -> String {
    match event {
        ChurnEvent::RouterJoin(r) => format!("router {} joins", topo.router(*r).name),
        ChurnEvent::RouterLeave(r) => format!("router {} leaves", topo.router(*r).name),
        ChurnEvent::LinkDown(l) => {
            let l = topo.link(*l);
            format!(
                "link {}--{} down",
                topo.router(l.a.router).name,
                topo.router(l.b.router).name
            )
        }
        ChurnEvent::LinkUp(l) => {
            let l = topo.link(*l);
            format!(
                "link {}--{} up",
                topo.router(l.a.router).name,
                topo.router(l.b.router).name
            )
        }
        ChurnEvent::Partition { domains } => {
            let names: Vec<&str> = domains
                .iter()
                .map(|d| topo.domain(*d).name.as_str())
                .collect();
            format!("partition {{{}}}", names.join(", "))
        }
        ChurnEvent::Heal => "heal".to_string(),
    }
}

/// Convenience: the duration of one churn slot for a window.
pub fn slot_duration(start: SimTime, end: SimTime) -> SimDuration {
    SimDuration::secs((end.0.saturating_sub(start.0).max(1) / u64::from(CHURN_SLOTS)).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_topology::reference::{mbone_1998, TopologyConfig};

    fn topo() -> (Topology, RouterId) {
        let r = mbone_1998(&TopologyConfig {
            domains: 4,
            routers_per_domain: 2,
            leaves_per_router: 1,
            native_fraction: 0.0,
        });
        (r.topo, r.fixw)
    }

    fn window() -> (SimTime, SimTime) {
        let start = SimTime::from_ymd(1999, 3, 1);
        (start, start + SimDuration::days(7))
    }

    #[test]
    fn generate_is_deterministic() {
        let (t, fixw) = topo();
        let (s, e) = window();
        for profile in [
            ChurnProfile::Calm,
            ChurnProfile::Flappy,
            ChurnProfile::Partition,
        ] {
            let a = ChurnSchedule::generate(profile, 42, &t, &[fixw], s, e);
            let b = ChurnSchedule::generate(profile, 42, &t, &[fixw], s, e);
            assert!(!a.is_empty());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.events.iter().zip(&b.events) {
                assert_eq!(x.at, y.at);
                assert_eq!(x.event, y.event);
                assert_eq!(x.label, y.label);
            }
            let c = ChurnSchedule::generate(profile, 43, &t, &[fixw], s, e);
            assert!(
                a.len() != c.len()
                    || a.events
                        .iter()
                        .zip(&c.events)
                        .any(|(x, y)| x.at != y.at || x.event != y.event),
                "different seeds should differ for {profile:?}"
            );
        }
    }

    #[test]
    fn from_raw_accepts_arbitrary_ops() {
        let (t, fixw) = topo();
        let (s, e) = window();
        // Degenerate and out-of-range values all map to something valid.
        let raw: Vec<RawChurnOp> = vec![
            (0, 0, 0),
            (u16::MAX, u8::MAX, u16::MAX),
            (50, 4, 3),
            (50, 4, 9),
            (51, 5, 0),
            (1, 17, 12345),
        ];
        let sched = ChurnSchedule::from_raw(&raw, &t, &[fixw], s, e);
        assert_eq!(sched.len(), raw.len());
        // Events are time-ordered.
        for w in sched.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Protected routers never appear in router events.
        for ev in &sched.events {
            match &ev.event {
                ChurnEvent::RouterJoin(r) | ChurnEvent::RouterLeave(r) => {
                    assert_ne!(*r, fixw, "fixw is protected")
                }
                ChurnEvent::Partition { domains } => {
                    assert!(!domains.is_empty());
                    let fixw_dom = t.router(fixw).domain;
                    assert!(!domains.contains(&fixw_dom));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn strip_filters_by_time() {
        let (t, fixw) = topo();
        let (s, e) = window();
        let sched = ChurnSchedule::generate(ChurnProfile::Partition, 1, &t, &[fixw], s, e);
        let all = sched.strip(None);
        assert_eq!(all.len(), sched.len());
        let none = sched.strip(Some(s));
        assert!(none.len() < all.len());
        assert!(sched.events.iter().any(|e| e.label.contains("partition")));
    }
}
