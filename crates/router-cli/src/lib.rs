//! Simulated router command-line interfaces.
//!
//! Mantra never spoke SNMP — the MIBs for PIM, MBGP and MSDP did not exist
//! or were stale — so it logged into routers with expect scripts and
//! scraped the text output of table-dump commands. This crate renders that
//! text from simulated router state, in two period-accurate flavours:
//!
//! * [`mrouted`] — the `mrouted` 3.x debug-dump style used by the UCSB
//!   campus collection point,
//! * [`ios`] — the IOS-style `show ip …` tables a commercial border like
//!   FIXW's would produce.
//!
//! The renderers are deliberately *messy* in the ways real CLIs are —
//! banners, prompts, variable column widths, continuation lines, `--More--`
//! pagination markers — because cleaning that up is exactly the job of
//! Mantra's pre-processing stage, and we want that code path exercised.

pub mod ios;
pub mod mrouted;

use mantra_net::SimTime;
use mantra_sim::Network;

pub use mantra_net::RouterId;

/// The router tables Mantra collects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// The DVMRP routing table (route monitoring, Figures 7–9).
    DvmrpRoutes,
    /// The multicast forwarding cache with rates (usage monitoring,
    /// Figures 3–6).
    ForwardingCache,
    /// IGMP group membership on leaf interfaces.
    IgmpGroups,
    /// The MBGP Loc-RIB (native-infrastructure route monitoring).
    MbgpRoutes,
    /// The MSDP source-active cache (interdomain session discovery).
    SaCache,
}

impl TableKind {
    /// All table kinds, in collection order.
    pub const ALL: [TableKind; 5] = [
        TableKind::DvmrpRoutes,
        TableKind::ForwardingCache,
        TableKind::IgmpGroups,
        TableKind::MbgpRoutes,
        TableKind::SaCache,
    ];

    /// The kind's position in [`TableKind::ALL`], for per-kind accounting
    /// arrays.
    pub const fn index(self) -> usize {
        match self {
            TableKind::DvmrpRoutes => 0,
            TableKind::ForwardingCache => 1,
            TableKind::IgmpGroups => 2,
            TableKind::MbgpRoutes => 3,
            TableKind::SaCache => 4,
        }
    }

    /// A short label used in logs and archive paths.
    pub fn label(self) -> &'static str {
        match self {
            TableKind::DvmrpRoutes => "dvmrp-routes",
            TableKind::ForwardingCache => "mroute-cache",
            TableKind::IgmpGroups => "igmp-groups",
            TableKind::MbgpRoutes => "mbgp-routes",
            TableKind::SaCache => "msdp-sa-cache",
        }
    }
}

/// Renders the requested table for `router` as the raw text an expect
/// script would capture, banner and prompt included.
///
/// Routers that run only DVMRP answer in `mrouted` style; everything else
/// answers in IOS style. Tables for protocols the router does not run come
/// back as the CLI's error line — Mantra's collector must cope.
pub fn render(net: &Network, router: RouterId, kind: TableKind, now: SimTime) -> String {
    let suite = net.topo.router(router).suite;
    let mrouted_style = suite.dvmrp && !suite.pim_sm && !suite.mbgp;
    let name = &net.topo.router(router).name;
    let body = if mrouted_style {
        mrouted::render(net, router, kind, now)
    } else {
        ios::render(net, router, kind, now)
    };
    // Wrap with the login banner / prompt noise the expect script captures.
    let mut out = String::with_capacity(body.len() + 128);
    out.push_str(&format!(
        "Trying {}...\r\nConnected to {name}.\r\nEscape character is '^]'.\r\n\r\n",
        net.topo.router(router).addr
    ));
    out.push_str(&body);
    out.push_str(&format!("\r\n{name}> "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    #[test]
    fn render_styles_follow_suites() {
        let mut sc = Scenario::transition_snapshot(1, 0.5);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
        let now = sc.sim.clock;
        // FIXW is a border: IOS style.
        let fixw_dump = render(&sc.sim.net, sc.fixw, TableKind::DvmrpRoutes, now);
        assert!(fixw_dump.contains("show ip dvmrp route"), "{fixw_dump}");
        // UCSB runs plain mrouted.
        let ucsb_dump = render(&sc.sim.net, sc.ucsb, TableKind::DvmrpRoutes, now);
        assert!(ucsb_dump.contains("DVMRP Routing Table"), "{ucsb_dump}");
        // Both carry telnet noise around the body.
        for d in [&fixw_dump, &ucsb_dump] {
            assert!(d.starts_with("Trying "));
            assert!(d.trim_end().ends_with('>'));
        }
    }

    #[test]
    fn all_kinds_render_without_panicking() {
        let mut sc = Scenario::transition_snapshot(2, 0.4);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(12));
        let now = sc.sim.clock;
        for kind in TableKind::ALL {
            for r in [sc.fixw, sc.ucsb] {
                let text = render(&sc.sim.net, r, kind, now);
                assert!(!text.is_empty());
            }
        }
    }
}
