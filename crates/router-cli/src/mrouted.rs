//! `mrouted` 3.x style table dumps — the UCSB collection point's dialect.
//!
//! Formats follow the debug dumps mrouted writes on `SIGUSR1` (the
//! `/var/tmp/mrouted.dump` tables), which is what tools of the period
//! actually parsed. Column spacing varies with value width, long vif lists
//! wrap onto continuation lines, and routes in holddown show a `--`
//! gateway, all of which Mantra's pre-processor has to survive.

use std::fmt::Write as _;

use mantra_net::{RouterId, SimTime};
use mantra_protocols::dvmrp::RouteState;
use mantra_sim::Network;

use crate::TableKind;

/// Renders one table in mrouted style.
pub fn render(net: &Network, router: RouterId, kind: TableKind, now: SimTime) -> String {
    match kind {
        TableKind::DvmrpRoutes => routes(net, router, now),
        TableKind::ForwardingCache => cache(net, router, now),
        TableKind::IgmpGroups => groups(net, router, now),
        TableKind::MbgpRoutes => "mrouted: unknown command 'show ip mbgp'\n".to_string(),
        TableKind::SaCache => "mrouted: unknown command 'show ip msdp'\n".to_string(),
    }
}

/// The DVMRP routing table.
fn routes(net: &Network, router: RouterId, now: SimTime) -> String {
    let mut out = String::new();
    let Some(engine) = net.dvmrp[router.index()].as_ref() else {
        return "mrouted: DVMRP not running\n".to_string();
    };
    let entries: Vec<_> = engine.rib.iter().collect();
    let _ = writeln!(out, "DVMRP Routing Table ({} entries)", entries.len());
    let _ = writeln!(
        out,
        " Origin-Subnet      From-Gateway       Metric  Tmr  In-Vif  Out-Vifs"
    );
    for (i, r) in entries.iter().enumerate() {
        let gw = match (r.next_hop, r.state) {
            (_, RouteState::Holddown { .. }) => "--".to_string(),
            (None, _) => "direct".to_string(),
            (Some(h), _) => net.topo.router(h).addr.to_string(),
        };
        let tmr = now.since(r.last_refresh).as_secs().min(999);
        // Real dumps drift in column width; emulate mildly based on row
        // parity so the parser cannot rely on fixed offsets.
        let pad = if i % 3 == 0 { "  " } else { " " };
        let _ = writeln!(
            out,
            " {:<18}{pad}{:<17}{pad}{:>4}  {:>4}  {:>4}    1*",
            r.prefix.to_string(),
            gw,
            r.metric,
            tmr,
            r.via_iface.0,
        );
    }
    out
}

/// The multicast forwarding cache (kernel MFC mirror).
fn cache(net: &Network, router: RouterId, now: SimTime) -> String {
    let mut out = String::new();
    let mfib = &net.mfib[router.index()];
    let _ = writeln!(
        out,
        "Multicast Routing Cache Table ({} entries)",
        mfib.len()
    );
    let _ = writeln!(
        out,
        " Origin             Mcast-group        CTmr  Age   Ptmr  Rate    IVif  Forwvifs"
    );
    for e in mfib.iter() {
        if e.key.is_wildcard() {
            continue; // mrouted has no shared trees
        }
        let age = now.since(e.created).as_secs() / 60;
        let fw: String = if e.oifs.is_empty() {
            "P".to_string() // pruned
        } else {
            e.oifs
                .iter()
                .map(|o| o.0.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(
            out,
            " {:<18} {:<18} {:>4} {:>4}m {:>5} {:>6}  {:>4}  {}",
            e.key.source.to_string(),
            e.key.group.to_string(),
            150,
            age,
            0,
            format!("{:.1}k", e.rate.kbps()),
            e.iif.0,
            fw,
        );
    }
    out
}

/// IGMP local membership (the vif/group table).
fn groups(net: &Network, router: RouterId, now: SimTime) -> String {
    let mut out = String::new();
    let igmp = &net.igmp[router.index()];
    let _ = writeln!(out, "Virtual Interface Table, Groups ({})", igmp.len());
    let _ = writeln!(out, " Vif  Group              Members  Reported");
    for (iface, group, m) in igmp.iter() {
        let ago = now.since(m.last_report).as_secs();
        let _ = writeln!(
            out,
            " {:>3}  {:<18} {:>7}  {}s ago",
            iface.0,
            group.to_string(),
            m.members.len(),
            ago,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn scenario() -> (mantra_sim::Scenario, SimTime) {
        let mut sc = Scenario::ucsb_injection_day(3);
        let t = sc.sim.clock + SimDuration::hours(6);
        sc.sim.advance_to(t);
        (sc, t)
    }

    #[test]
    fn route_table_has_header_and_rows() {
        let (sc, now) = scenario();
        let text = routes(&sc.sim.net, sc.ucsb, now);
        assert!(text.starts_with("DVMRP Routing Table ("));
        let rows = text.lines().skip(2).count();
        assert!(rows > 5, "rows: {rows}\n{text}");
        assert!(text.contains("direct"), "local routes show as direct");
    }

    #[test]
    fn cache_marks_pruned_entries() {
        let (sc, now) = scenario();
        let text = cache(&sc.sim.net, sc.ucsb, now);
        assert!(text.starts_with("Multicast Routing Cache Table ("));
        // With sessions running there are rows; some carry a rate.
        assert!(text.lines().count() > 2, "{text}");
    }

    #[test]
    fn unknown_commands_error_like_mrouted() {
        let (sc, now) = scenario();
        let text = render(&sc.sim.net, sc.ucsb, TableKind::MbgpRoutes, now);
        assert!(text.contains("unknown command"));
        let text = render(&sc.sim.net, sc.ucsb, TableKind::SaCache, now);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn igmp_groups_listed() {
        let (sc, now) = scenario();
        let text = groups(&sc.sim.net, sc.ucsb, now);
        assert!(text.starts_with("Virtual Interface Table"));
    }
}
