//! IOS-style `show ip …` tables — the exchange-point border's dialect.
//!
//! Output shapes follow late-1990s IOS: a command echo line, multi-line
//! `(S,G)` blocks with flag letters, `--More--` pagination markers every
//! 24 lines, and uptime rendered as `dd:hh:mm`. All of it is noise the
//! monitoring tool's pre-processor has to strip before parsing.

use std::fmt::Write as _;

use mantra_net::{RouterId, SimDuration, SimTime};
use mantra_protocols::dvmrp::RouteState;
use mantra_sim::Network;

use crate::TableKind;

/// Renders one table in IOS style.
pub fn render(net: &Network, router: RouterId, kind: TableKind, now: SimTime) -> String {
    let name = &net.topo.router(router).name;
    let body = match kind {
        TableKind::DvmrpRoutes => dvmrp_routes(net, router, now),
        TableKind::ForwardingCache => mroute(net, router, now),
        TableKind::IgmpGroups => igmp_groups(net, router, now),
        TableKind::MbgpRoutes => mbgp(net, router, now),
        TableKind::SaCache => sa_cache(net, router, now),
    };
    let cmd = match kind {
        TableKind::DvmrpRoutes => "show ip dvmrp route",
        TableKind::ForwardingCache => "show ip mroute count",
        TableKind::IgmpGroups => "show ip igmp groups",
        TableKind::MbgpRoutes => "show ip mbgp",
        TableKind::SaCache => "show ip msdp sa-cache",
    };
    let paged = paginate(&body);
    format!("{name}#{cmd}\n{paged}")
}

/// Inserts `--More--` markers every 24 lines, as a terminal with paging
/// enabled would (the expect scripts send spaces and capture the markers).
fn paginate(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 64);
    for (i, line) in body.lines().enumerate() {
        if i > 0 && i % 24 == 0 {
            out.push_str(" --More-- \r        \r");
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Uptime as IOS prints it: `hh:mm:ss` under a day, else `dd:hh:mm` — wait,
/// real IOS uses `00:04:23` or `3d04h`; we render both forms.
fn uptime(d: SimDuration) -> String {
    let s = d.as_secs();
    if s < 86_400 {
        format!("{:02}:{:02}:{:02}", s / 3_600, (s % 3_600) / 60, s % 60)
    } else {
        format!("{}d{:02}h", s / 86_400, (s % 86_400) / 3_600)
    }
}

fn dvmrp_routes(net: &Network, router: RouterId, now: SimTime) -> String {
    let Some(engine) = net.dvmrp[router.index()].as_ref() else {
        return "%DVMRP not enabled\n".to_string();
    };
    let mut out = String::new();
    let entries: Vec<_> = engine.rib.iter().collect();
    let _ = writeln!(out, "DVMRP Routing Table - {} entries", entries.len());
    for r in entries {
        let (gw, flags) = match (r.next_hop, r.state) {
            (_, RouteState::Holddown { .. }) => ("unreachable".to_string(), "H"),
            (None, _) => ("directly connected".to_string(), "C"),
            (Some(h), _) => (format!("via {}", net.topo.router(h).addr), " "),
        };
        let _ = writeln!(
            out,
            "{} [{}/{}] {} uptime {} {}",
            r.prefix,
            1,
            r.metric,
            gw,
            uptime(r.uptime(now)),
            flags,
        );
    }
    out
}

fn mroute(net: &Network, router: RouterId, now: SimTime) -> String {
    let mfib = &net.mfib[router.index()];
    let mut out = String::new();
    let _ = writeln!(out, "IP Multicast Statistics");
    let _ = writeln!(
        out,
        "{} routes using {} bytes of memory",
        mfib.len(),
        mfib.len() * 152,
    );
    let _ = writeln!(
        out,
        "Flags: D - Dense, S - Sparse, C - Connected, P - Pruned, M - MSDP created entry"
    );
    for e in mfib.iter() {
        let flags = {
            let mut f = String::new();
            match e.origin {
                mantra_protocols::mfib::EntryOrigin::Dvmrp => f.push('D'),
                mantra_protocols::mfib::EntryOrigin::PimDm => f.push('D'),
                mantra_protocols::mfib::EntryOrigin::PimSm => f.push('S'),
                mantra_protocols::mfib::EntryOrigin::Msdp => {
                    f.push('S');
                    f.push('M');
                }
                mantra_protocols::mfib::EntryOrigin::Local => f.push('C'),
            }
            if e.is_pruned() {
                f.push('P');
            }
            f
        };
        let src = if e.key.is_wildcard() {
            "*".to_string()
        } else {
            e.key.source.to_string()
        };
        let _ = writeln!(
            out,
            "({src}, {}), uptime {}, flags: {flags}",
            e.key.group,
            uptime(now.since(e.created)),
        );
        let oifs = if e.oifs.is_empty() {
            "Null".to_string()
        } else {
            e.oifs
                .iter()
                .map(|o| format!("Vif{}", o.0))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "  Incoming interface: Vif{}, Outgoing: {oifs}",
            e.iif.0
        );
        let _ = writeln!(
            out,
            "  Pkt count {}, bytes {}, rate {} kbps",
            e.packets,
            e.bytes,
            // IOS prints integer kbps.
            (e.rate.bps() + 500) / 1_000,
        );
    }
    out
}

fn igmp_groups(net: &Network, router: RouterId, now: SimTime) -> String {
    let igmp = &net.igmp[router.index()];
    let mut out = String::new();
    let _ = writeln!(out, "IGMP Connected Group Membership");
    let _ = writeln!(out, "Group Address    Interface   Uptime    Last Reporter");
    for (iface, group, m) in igmp.iter() {
        let _ = writeln!(
            out,
            "{:<16} Vif{:<8} {:<9} {}",
            group.to_string(),
            iface.0,
            uptime(now.since(m.since)),
            m.members.first().map(|h| h.to_string()).unwrap_or_default(),
        );
    }
    out
}

fn mbgp(net: &Network, router: RouterId, now: SimTime) -> String {
    let Some(engine) = net.mbgp[router.index()].as_ref() else {
        return "%BGP not active\n".to_string();
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MBGP table version is {}, local router ID is {}",
        engine.route_count(),
        net.topo.router(router).addr
    );
    let _ = writeln!(out, "   Network            Next Hop          Path");
    for (p, r) in engine.rib().iter() {
        let nh = match r.peer {
            None => "0.0.0.0".to_string(),
            Some(peer) => net.topo.router(peer).addr.to_string(),
        };
        let path: String = r
            .as_path
            .iter()
            .map(|d| (65_000 + d.0).to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "*> {:<18} {:<17} {path} i", p.to_string(), nh);
    }
    let _ = now;
    out
}

fn sa_cache(net: &Network, router: RouterId, now: SimTime) -> String {
    let Some(engine) = net.msdp[router.index()].as_ref() else {
        return "%MSDP not enabled\n".to_string();
    };
    let mut out = String::new();
    let _ = writeln!(out, "MSDP Source-Active Cache - {} entries", engine.len());
    for e in engine.entries() {
        let _ = writeln!(
            out,
            "({}, {}), RP {}, learned {}",
            e.source,
            e.group,
            net.topo.router(e.origin_rp).addr,
            uptime(now.since(e.first_seen)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn scenario() -> (mantra_sim::Scenario, SimTime) {
        let mut sc = Scenario::transition_snapshot(4, 0.5);
        let t = sc.sim.clock + SimDuration::hours(8);
        sc.sim.advance_to(t);
        (sc, t)
    }

    #[test]
    fn uptime_formats() {
        assert_eq!(uptime(SimDuration::secs(4 * 3600 + 23 * 60)), "04:23:00");
        assert_eq!(
            uptime(SimDuration::days(3) + SimDuration::hours(4)),
            "3d04h"
        );
    }

    #[test]
    fn pagination_inserts_more_markers() {
        let body: String = (0..60).map(|i| format!("line {i}\n")).collect();
        let paged = paginate(&body);
        assert_eq!(paged.matches("--More--").count(), 2);
    }

    #[test]
    fn mroute_blocks_have_three_lines_each() {
        let (sc, now) = scenario();
        let text = mroute(&sc.sim.net, sc.fixw, now);
        let entries = text.matches("uptime").count();
        let incoming = text.matches("Incoming interface").count();
        assert_eq!(entries, incoming);
        assert!(text.contains("IP Multicast Statistics"));
    }

    #[test]
    fn dvmrp_and_mbgp_render_on_border() {
        let (sc, now) = scenario();
        let dv = dvmrp_routes(&sc.sim.net, sc.fixw, now);
        assert!(dv.contains("DVMRP Routing Table"));
        let mb = mbgp(&sc.sim.net, sc.fixw, now);
        assert!(mb.contains("MBGP table version"));
        assert!(mb.contains("*>"));
    }

    #[test]
    fn sa_cache_renders_or_errors() {
        let (sc, now) = scenario();
        let sa = sa_cache(&sc.sim.net, sc.fixw, now);
        assert!(sa.contains("MSDP Source-Active Cache"));
        // A non-RP internal router reports MSDP disabled.
        let non_rp = (0..sc.sim.net.topo.router_count() as u32)
            .map(mantra_net::RouterId)
            .find(|r| sc.sim.net.msdp[r.index()].is_none())
            .unwrap();
        assert!(sa_cache(&sc.sim.net, non_rp, now).contains("%MSDP not enabled"));
    }
}
