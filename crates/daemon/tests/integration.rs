//! End-to-end daemon test: spawn `mantrad` in-process against a real
//! simulated internetwork and a real on-disk archive, then drive every
//! endpoint over actual TCP. The JSON assertions are golden *shapes* —
//! exact key names in exact order (the daemon's `Obj` builder preserves
//! insertion order) — plus the hard acceptance check: `/replay` lines
//! byte-identical to an offline [`ArchiveReader`] over the same archive.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use mantra_core::archive::ArchiveReader;
use mantra_core::collector::SimAccess;
use mantra_core::{ArchiveSpec, Monitor, MonitorConfig, SyncPolicy};
use mantra_daemon::{spawn, DaemonConfig, Engine};
use mantra_sim::Scenario;
use serde::Value;

const CYCLES: u64 = 4;

/// One blocking HTTP/1.1 GET: returns (status, content-type, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to mantrad");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_type = head
        .lines()
        .find_map(|l| {
            let (name, v) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-type")
                .then(|| v.trim().to_string())
        })
        .unwrap_or_default();
    (status, content_type, body.to_string())
}

fn json(addr: SocketAddr, path: &str) -> Value {
    let (status, ct, body) = get(addr, path);
    assert_eq!(status, 200, "{path}: {body}");
    assert_eq!(ct, "application/json", "{path}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("{path}: bad JSON ({e}): {body}"))
}

/// The object's keys, in serialization order — the golden shape.
fn keys(v: &Value) -> Vec<&str> {
    match v {
        Value::Map(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn uint(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => u64::try_from(*n).unwrap(),
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn seq(v: &Value) -> &[Value] {
    match v {
        Value::Seq(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

fn string(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

const CACHE_KEYS: [&str; 4] = ["hits", "misses", "evictions", "entries"];
const PARSE_KEYS: [&str; 4] = ["parsed", "malformed", "skipped", "rejected_mixed"];

#[test]
fn daemon_serves_golden_json_and_replay_matches_offline_reader() {
    let dir = std::env::temp_dir().join(format!("mantrad-itest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The same engine `mantra daemon` builds: a warm scenario, two
    // monitored routers, archives on disk.
    let mut sc = Scenario::transition_snapshot(1998, 0.4);
    sc.sim.set_report_loss(0.0);
    let monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        archive: ArchiveSpec::File {
            dir: dir.clone(),
            sync: SyncPolicy::default(),
        },
        ..MonitorConfig::default()
    });
    let interval = monitor.cfg.interval;
    let cfg = DaemonConfig {
        addr: "127.0.0.1:0".into(),
        router: "fixw".into(),
        refresh_secs: 1,
        tick: Duration::from_millis(5),
        max_cycles: Some(CYCLES),
        topology_events: vec![(mantra_net::SimTime::from_ymd(1999, 1, 1), "link fixw--ucsb-gw down".into())],
    };
    let handle = spawn(cfg, Engine::Single(monitor), move |engine: &mut Engine| {
        let next = sc.sim.clock + interval;
        sc.sim.advance_to(next);
        if let Engine::Single(m) = engine {
            m.run_cycle(&mut SimAccess::new(&sc.sim), next);
        }
        next
    })
    .expect("spawn mantrad");
    let addr = handle.addr();

    // Collection quiesces after max_cycles but the daemon keeps serving.
    let deadline = Instant::now() + Duration::from_secs(60);
    let health = loop {
        let h = json(addr, "/health");
        if uint(field(&h, "cycles")) >= CYCLES {
            break h;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached {CYCLES} cycles"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // /health — golden shape, both routers present and healthy.
    assert_eq!(
        keys(&health),
        [
            "cycles",
            "now",
            "capture_failures",
            "anomalies",
            "query_cache",
            "topology_events",
            "routers"
        ]
    );
    // The configured churn timeline predates the scenario window, so it
    // is already visible — and keyed as {at, event} rows.
    let events = seq(field(&health, "topology_events"));
    assert_eq!(events.len(), 1);
    assert_eq!(keys(&events[0]), ["at", "event"]);
    assert_eq!(string(field(&events[0], "event")), "link fixw--ucsb-gw down");
    assert_eq!(keys(field(&health, "query_cache")), CACHE_KEYS);
    let routers = seq(field(&health, "routers"));
    assert_eq!(routers.len(), 2);
    for (row, name) in routers.iter().zip(["fixw", "ucsb-gw"]) {
        assert_eq!(
            keys(row),
            [
                "router",
                "ok",
                "failed",
                "retries",
                "recovered",
                "salvaged",
                "raw_bytes",
                "last_success",
                "stale",
                "state",
                "missed_cycles",
                "rejoins",
                "archive_degraded"
            ]
        );
        assert_eq!(string(field(row, "state")), "active");
        assert_eq!(uint(field(row, "missed_cycles")), 0);
        assert_eq!(string(field(row, "router")), name);
        // Several captures land per cycle (one per table command); a
        // lossless run has a clean multiple of them and zero failures.
        let ok = uint(field(row, "ok"));
        assert!(ok >= CYCLES && ok.is_multiple_of(CYCLES), "{name}: ok={ok}");
        assert_eq!(uint(field(row, "failed")), 0, "{name}: lossless run");
        assert_eq!(field(row, "stale"), &Value::Bool(false), "{name}");
    }

    // /parse — totals accumulate across cycles, last covers one cycle.
    let parse = json(addr, "/parse");
    assert_eq!(keys(&parse), ["degraded", "totals", "last"]);
    assert_eq!(keys(field(&parse, "totals")), PARSE_KEYS);
    assert_eq!(keys(field(&parse, "last")), PARSE_KEYS);
    assert_eq!(field(&parse, "degraded"), &Value::Bool(false));
    let total_parsed = uint(field(field(&parse, "totals"), "parsed"));
    let last_parsed = uint(field(field(&parse, "last"), "parsed"));
    assert!(total_parsed >= last_parsed && last_parsed > 0);

    // /stats/usage — one UsageStats per completed cycle.
    let usage = json(addr, "/stats/usage?router=fixw");
    assert_eq!(keys(&usage), ["router", "state", "retired", "cycles", "usage"]);
    assert_eq!(string(field(&usage, "router")), "fixw");
    assert_eq!(string(field(&usage, "state")), "active");
    assert_eq!(field(&usage, "retired"), &Value::Bool(false));
    assert_eq!(uint(field(&usage, "cycles")), CYCLES);
    assert_eq!(seq(field(&usage, "usage")).len() as u64, CYCLES);

    // /anomalies — since is echoed (null without the parameter).
    let anomalies = json(addr, "/anomalies");
    assert_eq!(keys(&anomalies), ["since", "anomalies"]);
    assert_eq!(field(&anomalies, "since"), &Value::Null);
    let all = seq(field(&anomalies, "anomalies")).len();
    let late = json(addr, "/anomalies?since=2100-01-01");
    assert!(seq(field(&late, "anomalies")).len() <= all);
    assert_eq!(
        uint(field(&late, "since")),
        mantra_net::SimTime::from_ymd(2100, 1, 1).as_secs()
    );

    // /replay — the acceptance check: byte-identical to an offline
    // ArchiveReader over the same on-disk archive.
    let archive = ArchiveSpec::path_for(&dir, "fixw");
    let offline = ArchiveReader::open(&archive).expect("offline open");
    let offline_lines = offline.summary_lines(offline.len()).unwrap();
    assert_eq!(offline.len() as u64, CYCLES);

    let replay = json(addr, "/replay?router=fixw");
    assert_eq!(
        keys(&replay),
        ["router", "at", "records", "snapshots", "cache", "lines"]
    );
    assert_eq!(field(&replay, "at"), &Value::Null);
    assert_eq!(uint(field(&replay, "records")), CYCLES);
    assert_eq!(uint(field(&replay, "snapshots")), CYCLES);
    let served: Vec<&str> = seq(field(&replay, "lines")).iter().map(string).collect();
    assert_eq!(
        served, offline_lines,
        "daemon replay diverges from offline reader"
    );

    // Same query again: answered from the cache, and the counter proves it.
    let hits_before = uint(field(field(&replay, "cache"), "hits"));
    let again = json(addr, "/replay?router=fixw");
    let served_again: Vec<&str> = seq(field(&again, "lines")).iter().map(string).collect();
    assert_eq!(served_again, offline_lines);
    assert!(
        uint(field(field(&again, "cache"), "hits")) > hits_before,
        "repeat query did not hit the cache"
    );

    // Time travel: at= the second record's capture time replays exactly
    // the first two snapshots.
    let at = offline.times()[1].as_secs();
    let travel = json(addr, &format!("/replay?router=fixw&at={at}"));
    assert_eq!(uint(field(&travel, "at")), at);
    assert_eq!(uint(field(&travel, "records")), 2);
    let travelled: Vec<&str> = seq(field(&travel, "lines")).iter().map(string).collect();
    assert_eq!(travelled, &offline_lines[..2]);

    // Errors are JSON too, with the right statuses.
    for (path, want) in [
        ("/stats/usage", 400),
        ("/stats/usage?router=nowhere", 404),
        ("/replay", 400),
        ("/replay?router=nowhere", 404),
        ("/replay?router=fixw&at=whenever", 400),
        ("/no-such-endpoint", 404),
    ] {
        let (status, ct, body) = get(addr, path);
        assert_eq!(status, want, "{path}");
        assert_eq!(ct, "application/json", "{path}");
        let err: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(keys(&err), ["error"], "{path}");
    }

    // The live report: HTML with the auto-refresh strip wired in.
    let (status, ct, html) = get(addr, "/");
    assert_eq!(status, 200);
    assert!(ct.starts_with("text/html"), "content-type {ct}");
    assert!(html.contains("<svg"), "report lost its charts");
    assert!(html.contains("id=\"live\""), "live status strip missing");
    assert!(html.contains("/health"), "live poller must query /health");

    handle.stop();
    assert!(archive_untouched_after_stop(&archive));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// After shutdown the archive is still a clean, openable v2 file — the
/// daemon's read path never left it mid-mutation.
fn archive_untouched_after_stop(path: &Path) -> bool {
    ArchiveReader::open(path).is_ok()
}
