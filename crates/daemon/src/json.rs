//! Tiny JSON composition helpers.
//!
//! The vendored `serde_json` renders any `Serialize` type, but the daemon's
//! endpoint envelopes mix derived payloads (usage histories, anomalies)
//! with hand-assembled fields (cache counters, router health rows). These
//! helpers build the envelopes without an intermediate value tree: every
//! derived payload is rendered by `serde_json` and spliced in as a raw
//! fragment.

use std::fmt::Write;

/// Renders a JSON string literal, escaping per RFC 8259.
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds one JSON object field-by-field; values arrive pre-rendered.
#[derive(Default)]
pub struct Obj {
    parts: Vec<String>,
}

impl Obj {
    pub fn new() -> Self {
        Self::default()
    }

    /// A field whose value is already valid JSON (a number rendered with
    /// `{}`, a `serde_json::to_string` payload, a nested [`Obj`]).
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.parts.push(format!("{}:{}", jstr(key), value.into()));
        self
    }

    /// A string field, escaped here.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = jstr(value);
        self.raw(key, v)
    }

    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn usize(self, key: &str, value: usize) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// `null` when `None`, else the rendering `f` produces.
    pub fn opt<T>(self, key: &str, value: Option<T>, f: impl FnOnce(T) -> String) -> Self {
        match value {
            Some(v) => self.raw(key, f(v)),
            None => self.raw(key, "null"),
        }
    }

    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Renders a JSON array from pre-rendered element fragments.
pub fn jarr(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_composes() {
        let o = Obj::new()
            .str("name", "a\"b\\c\n")
            .u64("n", 7)
            .bool("ok", true)
            .opt("maybe", None::<u64>, |v| v.to_string())
            .raw("list", jarr(["1".to_string(), "2".to_string()]))
            .finish();
        assert_eq!(
            o,
            "{\"name\":\"a\\\"b\\\\c\\n\",\"n\":7,\"ok\":true,\"maybe\":null,\"list\":[1,2]}"
        );
    }
}
