//! `mantrad` — the always-on monitoring daemon.
//!
//! The paper's Mantra ran as a service: collection on a timer, results
//! queryable at any moment through a web front-end. This crate is that
//! shape for the reproduction. One **tick thread** owns the
//! [`Monitor`]/[`FleetMonitor`] (behind a `Mutex` held only for the
//! duration of a cycle) and drives collection at a wall-clock cadence;
//! a **serve thread** accepts HTTP/1.1 connections and answers JSON
//! queries from brief lock grabs — or, for `/replay`, from no lock at
//! all: time-travel replay goes through the read-only
//! [`ArchiveReader`], which snapshots the archive's logical end and
//! replays a consistent prefix while the writer keeps appending, with
//! results memoised in the monitor's shared [`QueryCache`].
//!
//! Endpoints:
//!
//! | path                    | answer                                       |
//! |-------------------------|----------------------------------------------|
//! | `/`                     | auto-refreshing live HTML report             |
//! | `/health`               | cycles, per-router health, cache counters    |
//! | `/stats/usage?router=`  | usage-statistics history (JSON)              |
//! | `/anomalies?since=`     | anomalies at or after `since`                |
//! | `/parse`                | cumulative + last-cycle parse accounting     |
//! | `/replay?router=&at=`   | archive replay summary lines up to `at`      |
//!
//! `at=` and `since=` accept raw Unix seconds or `YYYY-MM-DD[THH:MM:SS]`
//! ([`SimTime::parse`]). Shutdown is cooperative: SIGTERM/SIGINT set a
//! flag ([`install_signal_handlers`]), both threads notice within ~100 ms
//! and exit cleanly.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use mantra_core::anomaly::Anomaly;
use mantra_core::archive::{ArchiveReader, CacheStats, QueryCache};
use mantra_core::monitor::RouterHealth;
use mantra_core::processor::ParseStats;
use mantra_core::stats::UsageStats;
use mantra_core::{FleetMonitor, Monitor, MonitorConfig};
use mantra_net::SimTime;

pub mod http;
pub mod json;

use http::{Request, Response};
use json::{jarr, jstr, Obj};

// ----------------------------------------------------------------------
// Engine: one monitor or a sharded fleet behind one query surface
// ----------------------------------------------------------------------

/// What the daemon drives: a single [`Monitor`] or a sharded
/// [`FleetMonitor`], presented to the endpoints as one surface.
// The variants differ in size by a couple of KB, but the daemon owns
// exactly one `Engine` for its whole lifetime — boxing would buy
// nothing and cost an indirection on every query.
#[allow(clippy::large_enum_variant)]
pub enum Engine {
    Single(Monitor),
    Fleet(FleetMonitor),
}

impl Engine {
    pub fn cfg(&self) -> &MonitorConfig {
        match self {
            Engine::Single(m) => &m.cfg,
            Engine::Fleet(f) => &f.cfg,
        }
    }

    pub fn cycles(&self) -> u64 {
        match self {
            Engine::Single(m) => m.cycles(),
            Engine::Fleet(f) => f.cycles(),
        }
    }

    pub fn capture_failures(&self) -> u64 {
        match self {
            Engine::Single(m) => m.capture_failures(),
            Engine::Fleet(f) => f.capture_failures(),
        }
    }

    pub fn anomalies(&self) -> &[Anomaly] {
        match self {
            Engine::Single(m) => &m.anomalies,
            Engine::Fleet(f) => &f.anomalies,
        }
    }

    pub fn parse_totals(&self) -> ParseStats {
        match self {
            Engine::Single(m) => m.parse_totals,
            Engine::Fleet(f) => f.parse_totals(),
        }
    }

    pub fn parse_last(&self) -> ParseStats {
        match self {
            Engine::Single(m) => m.parse_last,
            Engine::Fleet(f) => f.parse_last(),
        }
    }

    pub fn parse_degraded(&self) -> bool {
        match self {
            Engine::Single(m) => m.parse_degraded(),
            Engine::Fleet(f) => f.parse_degraded(),
        }
    }

    /// The monitor responsible for `router` (the shard, in fleet mode),
    /// or `None` when no monitor watches a router by that name — the
    /// 404 the query endpoints lean on.
    pub fn monitor_of(&self, router: &str) -> Option<&Monitor> {
        match self {
            Engine::Single(m) => m.cfg.routers.iter().any(|r| r == router).then_some(m),
            Engine::Fleet(f) => f.monitor_of(router),
        }
    }

    pub fn router_health(&self, router: &str) -> Option<&RouterHealth> {
        self.monitor_of(router)?.router_health(router)
    }

    pub fn usage_history(&self, router: &str) -> &[UsageStats] {
        self.monitor_of(router)
            .map(|m| m.usage_history(router))
            .unwrap_or(&[])
    }

    /// Query-cache counters summed across all owned caches.
    pub fn cache_stats(&self) -> CacheStats {
        match self {
            Engine::Single(m) => m.query_cache().stats(),
            Engine::Fleet(f) => f.query_cache_stats(),
        }
    }

    /// `router`'s on-disk archive path and the query cache that memoises
    /// replays over it — everything `/replay` needs, so the handler can
    /// drop the engine lock before touching the archive.
    pub fn replay_source(&self, router: &str) -> Option<(PathBuf, Arc<QueryCache>)> {
        let m = self.monitor_of(router)?;
        Some((m.archive_path(router)?, m.query_cache()))
    }

    /// The lifecycle state of one router
    /// (active / stale(n) / retired), judged by its owning monitor.
    pub fn lifecycle_of(&self, router: &str) -> Option<mantra_core::LifecycleState> {
        self.monitor_of(router)?.lifecycle_of(router)
    }

    /// The live HTML report (single-router page, or the fleet page),
    /// with the topology-events strip rendered from `events`.
    pub fn report_html(
        &self,
        router: &str,
        now: SimTime,
        refresh_secs: u64,
        events: &[(SimTime, String)],
    ) -> String {
        match self {
            Engine::Single(m) => mantra_core::web::live_wrap(
                &mantra_core::web::report_html_with_events(m, router, events),
                refresh_secs,
            ),
            Engine::Fleet(f) => mantra_core::web::live_wrap(
                &mantra_core::web::fleet_report_html_with_events(f, now, events),
                refresh_secs,
            ),
        }
    }
}

// ----------------------------------------------------------------------
// Configuration and lifecycle
// ----------------------------------------------------------------------

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (reported by
    /// [`DaemonHandle::addr`]).
    pub addr: String,
    /// Default router for the `/` report page.
    pub router: String,
    /// Live-report poll cadence in seconds.
    pub refresh_secs: u64,
    /// Wall-clock pause between collection cycles.
    pub tick: Duration,
    /// Stop *collecting* after this many cycles (`None` = forever); the
    /// query surface keeps serving either way. CI uses this to diff a
    /// quiescent archive against the offline replay.
    pub max_cycles: Option<u64>,
    /// The scenario's churn timeline (`(event time, label)`), shown on
    /// `/health` (filtered to events at or before the latest cycle) and
    /// as the report page's topology-events strip. Empty for a static
    /// world.
    pub topology_events: Vec<(SimTime, String)>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:4617".into(),
            router: "fixw".into(),
            refresh_secs: 2,
            tick: Duration::from_millis(250),
            max_cycles: None,
            topology_events: Vec::new(),
        }
    }
}

struct Shared {
    engine: Mutex<Engine>,
    /// Latest cycle timestamp (SimTime seconds); endpoints judge
    /// staleness and render the fleet report against this.
    now: AtomicU64,
    shutdown: AtomicBool,
    default_router: String,
    refresh_secs: u64,
    /// Full churn timeline for the run; endpoints filter by `now`.
    topology_events: Vec<(SimTime, String)>,
}

/// A running daemon: the bound address plus the two thread handles.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    serve: thread::JoinHandle<()>,
    tick: thread::JoinHandle<()>,
}

impl DaemonHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without waiting.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests shutdown and joins both threads.
    pub fn stop(self) {
        self.request_shutdown();
        let _ = self.tick.join();
        let _ = self.serve.join();
    }
}

/// How often the accept loop and the tick thread re-check the shutdown
/// flag while otherwise idle.
const POLL: Duration = Duration::from_millis(50);

/// Starts the daemon: binds `cfg.addr`, spawns the tick and serve
/// threads, returns immediately. `tick` advances the simulation (or
/// whatever feeds the engine) by one collection cycle and returns the
/// new current time; it runs under the engine lock.
pub fn spawn<F>(cfg: DaemonConfig, engine: Engine, tick: F) -> io::Result<DaemonHandle>
where
    F: FnMut(&mut Engine) -> SimTime + Send + 'static,
{
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine: Mutex::new(engine),
        now: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        default_router: cfg.router.clone(),
        refresh_secs: cfg.refresh_secs,
        topology_events: cfg.topology_events.clone(),
    });

    let tick_shared = Arc::clone(&shared);
    let tick_pause = cfg.tick;
    let max_cycles = cfg.max_cycles;
    let tick_handle = thread::Builder::new()
        .name("mantrad-tick".into())
        .spawn(move || run_ticks(&tick_shared, tick, tick_pause, max_cycles))?;

    let serve_shared = Arc::clone(&shared);
    let serve_handle = thread::Builder::new()
        .name("mantrad-serve".into())
        .spawn(move || run_accept_loop(&serve_shared, listener))?;

    Ok(DaemonHandle {
        addr,
        shared,
        serve: serve_handle,
        tick: tick_handle,
    })
}

fn run_ticks<F>(shared: &Shared, mut tick: F, pause: Duration, max_cycles: Option<u64>)
where
    F: FnMut(&mut Engine) -> SimTime,
{
    let mut done = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        if max_cycles.is_none_or(|max| done < max) {
            let now = {
                let mut engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
                tick(&mut engine)
            };
            shared.now.store(now.as_secs(), Ordering::SeqCst);
            done += 1;
        }
        // Sleep in short slices so SIGTERM lands within ~POLL.
        let mut left = pause;
        while left > Duration::ZERO && !shared.shutdown.load(Ordering::SeqCst) {
            let step = left.min(POLL);
            thread::sleep(step);
            left = left.saturating_sub(step);
        }
    }
}

fn run_accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("mantrad-conn".into())
                    .spawn(move || handle_connection(&shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let resp = match http::read_request(&mut stream) {
        Ok(req) => route(shared, &req),
        Err(e) if e.kind() == io::ErrorKind::Unsupported => Response::error(405, &e.to_string()),
        Err(e) => Response::error(400, &e.to_string()),
    };
    let _ = http::write_response(&mut stream, &resp);
}

// ----------------------------------------------------------------------
// Endpoints
// ----------------------------------------------------------------------

fn route(shared: &Shared, req: &Request) -> Response {
    match req.path.as_str() {
        "/" | "/report" => report(shared, req),
        "/health" => health(shared),
        "/stats/usage" => usage(shared, req),
        "/anomalies" => anomalies(shared, req),
        "/parse" => parse(shared),
        "/replay" => replay(shared, req),
        other => Response::error(404, &format!("no such endpoint {other:?}")),
    }
}

fn cache_json(c: CacheStats) -> String {
    Obj::new()
        .u64("hits", c.hits)
        .u64("misses", c.misses)
        .u64("evictions", c.evictions)
        .u64("entries", c.entries)
        .finish()
}

fn parse_stats_json(p: ParseStats) -> String {
    Obj::new()
        .usize("parsed", p.parsed)
        .usize("malformed", p.malformed)
        .usize("skipped", p.skipped)
        .usize("rejected_mixed", p.rejected_mixed)
        .finish()
}

fn report(shared: &Shared, req: &Request) -> Response {
    let engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
    let router = req.param("router").unwrap_or(&shared.default_router);
    let now = SimTime(shared.now.load(Ordering::SeqCst));
    Response::html(engine.report_html(router, now, shared.refresh_secs, &shared.topology_events))
}

fn health(shared: &Shared) -> Response {
    let engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
    let now = SimTime(shared.now.load(Ordering::SeqCst));
    let cfg = engine.cfg();
    let (interval, stale_after) = (cfg.interval, cfg.stale_after_intervals);
    let rows = cfg.routers.iter().filter_map(|router| {
        let h = engine.router_health(router)?;
        let state = h.lifecycle(stale_after).label();
        Some(
            Obj::new()
                .str("router", router)
                .u64("ok", h.successes)
                .u64("failed", h.failures)
                .u64("retries", h.retries)
                .u64("recovered", h.retry_successes)
                .u64("salvaged", h.salvaged)
                .u64("raw_bytes", h.raw_bytes)
                .opt("last_success", h.last_success, |t| t.as_secs().to_string())
                .bool("stale", h.is_stale(now, interval, stale_after))
                .str("state", &state)
                .u64("missed_cycles", h.missed_cycles)
                .u64("rejoins", h.rejoins)
                .bool("archive_degraded", h.archive_degraded)
                .finish(),
        )
    });
    let rows: Vec<String> = rows.collect();
    // Topology events that have already happened, oldest first. The
    // timeline is known up front (the schedule is deterministic); only
    // the `now` cut varies as cycles land.
    let events: Vec<String> = shared
        .topology_events
        .iter()
        .filter(|(at, _)| at.as_secs() <= now.as_secs())
        .map(|(at, label)| {
            Obj::new()
                .u64("at", at.as_secs())
                .str("event", label)
                .finish()
        })
        .collect();
    Response::json(
        Obj::new()
            .u64("cycles", engine.cycles())
            .u64("now", now.as_secs())
            .u64("capture_failures", engine.capture_failures())
            .usize("anomalies", engine.anomalies().len())
            .raw("query_cache", cache_json(engine.cache_stats()))
            .raw("topology_events", jarr(events))
            .raw("routers", jarr(rows))
            .finish(),
    )
}

fn usage(shared: &Shared, req: &Request) -> Response {
    let engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
    let Some(router) = req.param("router") else {
        return Response::error(400, "missing required query parameter 'router'");
    };
    if engine.monitor_of(router).is_none() {
        return Response::error(404, &format!("unknown router {router:?}"));
    }
    // A retired router's history is a frozen prefix, not live data —
    // say so instead of serving it unlabeled.
    let state = engine
        .lifecycle_of(router)
        .map(|l| l.label())
        .unwrap_or_else(|| "unknown".into());
    let retired = state == "retired";
    let history = engine.usage_history(router);
    let payload = match serde_json::to_string(history) {
        Ok(p) => p,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let mut obj = Obj::new()
        .str("router", router)
        .str("state", &state)
        .bool("retired", retired)
        .usize("cycles", history.len());
    if retired {
        obj = obj.str(
            "note",
            "router is retired; history is the archived prefix up to its last successful cycle",
        );
    }
    Response::json(obj.raw("usage", payload).finish())
}

fn anomalies(shared: &Shared, req: &Request) -> Response {
    let since = match req.param("since").map(SimTime::parse).transpose() {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("since={e}")),
    };
    let engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
    let picked: Vec<&Anomaly> = engine
        .anomalies()
        .iter()
        .filter(|a| since.is_none_or(|s| a.at >= s))
        .collect();
    let payload = match serde_json::to_string(&picked) {
        Ok(p) => p,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    Response::json(
        Obj::new()
            .opt("since", since, |s| s.as_secs().to_string())
            .raw("anomalies", payload)
            .finish(),
    )
}

fn parse(shared: &Shared) -> Response {
    let engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
    Response::json(
        Obj::new()
            .bool("degraded", engine.parse_degraded())
            .raw("totals", parse_stats_json(engine.parse_totals()))
            .raw("last", parse_stats_json(engine.parse_last()))
            .finish(),
    )
}

/// Time-travel replay. Takes the engine lock only long enough to resolve
/// the archive path and cache handle; the replay itself runs lock-free
/// against the read-only [`ArchiveReader`] so a slow archive scan never
/// stalls collection or other queries.
fn replay(shared: &Shared, req: &Request) -> Response {
    let Some(router) = req.param("router") else {
        return Response::error(400, "missing required query parameter 'router'");
    };
    let router = router.to_string();
    let at = match req.param("at").map(SimTime::parse).transpose() {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("at={e}")),
    };
    let source = {
        let engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
        engine.replay_source(&router)
    };
    let Some((path, cache)) = source else {
        return Response::error(
            404,
            &format!("router {router:?} has no on-disk archive to replay"),
        );
    };
    let reader = match ArchiveReader::open(&path) {
        Ok(r) => r,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Response::error(404, &format!("archive not written yet: {e}"))
        }
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let count = match at {
        Some(t) => reader.records_at_or_before(t),
        None => reader.len(),
    };
    let key = (path, reader.epoch(), (0, count));
    let lines = match cache.get_or_try_insert(key, || reader.summary_lines(count)) {
        Ok(l) => l,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    Response::json(
        Obj::new()
            .str("router", &router)
            .opt("at", at, |t| t.as_secs().to_string())
            .usize("records", count)
            .usize("snapshots", lines.len())
            .raw("cache", cache_json(cache.stats()))
            .raw("lines", jarr(lines.iter().map(|l| jstr(l))))
            .finish(),
    )
}

// ----------------------------------------------------------------------
// Signals
// ----------------------------------------------------------------------

static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set a process-wide flag
/// ([`shutdown_requested`]). Raw `signal(2)` through FFI — the daemon
/// only ever sets one atomic from the handler, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Whether a termination signal has arrived since
/// [`install_signal_handlers`].
pub fn shutdown_requested() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}
