//! A deliberately small HTTP/1.1 server layer: parse one `GET` request
//! from a stream, percent-decode its query string, write one response,
//! close. No keep-alive, no chunking, no dependencies — the daemon's
//! query surface is a handful of JSON endpoints polled by scripts and
//! the live report page, not a general web server.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Request lines past this size are rejected outright (the daemon's
/// longest legitimate URL is well under 1 KiB).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request: the decoded path and its query parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    pub path: String,
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The last occurrence of a query parameter, percent-decoded.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads and parses one request head from `stream`. Errors double as the
/// response status: `InvalidData` maps to 400, `Unsupported` to 405.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_ascii_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if method != "GET" {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("method {method} not allowed (GET only)"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Ok(Request {
        path: percent_decode(path),
        query,
    })
}

/// Percent-decodes one URL component; `+` reads as a space (form style),
/// malformed escapes pass through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response, written whole with `Connection: close`.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    pub fn html(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body,
        }
    }

    /// An error response; the body is a JSON object carrying the message.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: format!("{{\"error\":{}}}", crate::json::jstr(message)),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes `resp` to `stream` and flushes; the caller closes the stream.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("ucsb-gw"), "ucsb-gw");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%41%6c"), "Al");
    }
}
