//! The topology container.
//!
//! [`Topology`] owns all routers, links and domains and provides the
//! adjacency queries the protocol state machines run over. It is mutable in
//! exactly the ways the evaluation scenarios need: links flap, tunnels get
//! torn down, and domains (with their routers) migrate from DVMRP to native
//! sparse mode.

use serde::{Deserialize, Serialize};

use mantra_net::{DomainId, Ip, Prefix, RouterId};

use crate::domain::{Domain, DomainProtocol};
use crate::link::{Endpoint, Link, LinkId, LinkKind};
use crate::router::{Iface, IfaceKind, ProtocolSuite, Router};

/// A complete simulated internetwork.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    routers: Vec<Router>,
    links: Vec<Link>,
    domains: Vec<Domain>,
    /// Adjacency lists: for each router, the links touching it.
    adjacency: Vec<Vec<LinkId>>,
}

impl Topology {
    /// An empty internetwork.
    pub fn new() -> Self {
        Topology::default()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a domain and returns its id.
    pub fn add_domain(&mut self, name: impl Into<String>, protocol: DomainProtocol) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain::new(id, name, protocol));
        id
    }

    /// Registers a prefix originated by `domain`.
    pub fn add_domain_prefix(&mut self, domain: DomainId, prefix: Prefix) {
        self.domains[domain.index()].prefixes.push(prefix);
    }

    /// Adds a router to a domain and returns its id.
    pub fn add_router(
        &mut self,
        name: impl Into<String>,
        addr: Ip,
        domain: DomainId,
        suite: ProtocolSuite,
    ) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router {
            id,
            name: name.into(),
            addr,
            domain,
            suite,
            ifaces: Vec::new(),
            active: true,
        });
        self.adjacency.push(Vec::new());
        self.domains[domain.index()].routers.push(id);
        id
    }

    /// Marks `router` as its domain's border router.
    pub fn set_border(&mut self, router: RouterId) {
        let d = self.routers[router.index()].domain;
        self.domains[d.index()].border = Some(router);
    }

    /// Adds a leaf (host-bearing) interface to a router.
    pub fn add_leaf(&mut self, router: RouterId, addr: Ip) {
        self.routers[router.index()].add_iface(addr, IfaceKind::Leaf, 1);
    }

    /// Connects two routers, creating an interface on each and the link
    /// between them. Interface addresses are derived from the link index so
    /// reference topologies don't have to plan an addressing scheme.
    pub fn connect(&mut self, x: RouterId, y: RouterId, kind: LinkKind, metric: u32) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        // Point-to-point /30-style addressing out of 10.128/9, keyed by link.
        let base = Ip(Ip::new(10, 128, 0, 0).0 + id.0 * 4);
        let ax = Ip(base.0 + 1);
        let ay = Ip(base.0 + 2);
        let (kx, ky) = match kind {
            LinkKind::Native => (IfaceKind::Physical, IfaceKind::Physical),
            LinkKind::Tunnel => (
                IfaceKind::Tunnel { remote: ay },
                IfaceKind::Tunnel { remote: ax },
            ),
        };
        let ix = self.routers[x.index()].add_iface(ax, kx, metric);
        let iy = self.routers[y.index()].add_iface(ay, ky, metric);
        self.links.push(Link {
            id,
            a: Endpoint {
                router: x,
                iface: ix,
            },
            b: Endpoint {
                router: y,
                iface: iy,
            },
            kind,
            metric,
            delay: mantra_net::SimDuration::secs(0),
            capacity: mantra_net::BitRate::from_mbps(10),
            up: true,
        });
        self.adjacency[x.index()].push(id);
        self.adjacency[y.index()].push(id);
        id
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// All routers, indexable by `RouterId`.
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// One router.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Mutable access to one router (protocol suite changes).
    pub fn router_mut(&mut self, id: RouterId) -> &mut Router {
        &mut self.routers[id.index()]
    }

    /// Finds a router by name.
    pub fn router_by_name(&self, name: &str) -> Option<&Router> {
        self.routers.iter().find(|r| r.name == name)
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// One link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// One domain.
    pub fn domain(&self, id: DomainId) -> &Domain {
        &self.domains[id.index()]
    }

    /// Mutable access to one domain (transition migration).
    pub fn domain_mut(&mut self, id: DomainId) -> &mut Domain {
        &mut self.domains[id.index()]
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Links touching `router` (up or down).
    pub fn links_of(&self, router: RouterId) -> impl Iterator<Item = &Link> + '_ {
        self.adjacency[router.index()].iter().map(|l| self.link(*l))
    }

    /// Live neighbors of `router`: `(link, local endpoint, remote endpoint)`.
    pub fn neighbors(
        &self,
        router: RouterId,
    ) -> impl Iterator<Item = (&Link, Endpoint, Endpoint)> + '_ {
        self.links_of(router).filter(|l| l.up).map(move |l| {
            let local = l.endpoint_of(router).expect("adjacency is consistent");
            let remote = l.other(router).expect("adjacency is consistent");
            (l, local, remote)
        })
    }

    /// The link joining two routers, if any.
    pub fn link_between(&self, x: RouterId, y: RouterId) -> Option<&Link> {
        self.adjacency[x.index()]
            .iter()
            .map(|l| self.link(*l))
            .find(|l| l.joins(x, y))
    }

    // ------------------------------------------------------------------
    // Mutation (scenario events)
    // ------------------------------------------------------------------

    /// Brings a link up or down (flap injection, tunnel decommissioning).
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        self.links[id.index()].up = up;
    }

    /// Powers a router on or off. A powered-off router keeps its id,
    /// interfaces and domain membership — churn deactivates, it never
    /// renumbers — but counts as absent for activity queries.
    pub fn set_router_active(&mut self, id: RouterId, active: bool) {
        self.routers[id.index()].active = active;
    }

    /// Whether a router is currently powered on.
    pub fn is_active(&self, id: RouterId) -> bool {
        self.routers[id.index()].active
    }

    /// Links whose endpoints land in different domains, one inside `domains`
    /// and one outside — the cut set a partition event takes down.
    pub fn partition_cut(&self, domains: &[DomainId]) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| {
                let a_in = domains.contains(&self.router(l.a.router).domain);
                let b_in = domains.contains(&self.router(l.b.router).domain);
                a_in != b_in
            })
            .map(|l| l.id)
            .collect()
    }

    /// Migrates a whole domain to native sparse mode: flips the domain
    /// protocol, re-suites its routers, and tears down its tunnels.
    ///
    /// The domain's border router keeps DVMRP if it peers with a DVMRP
    /// domain (it becomes a border like FIXW), otherwise drops it.
    pub fn migrate_domain_to_sparse(&mut self, id: DomainId) {
        self.domains[id.index()].migrate_to_sparse();
        let routers = self.domains[id.index()].routers.clone();
        let border = self.domains[id.index()].border;
        for r in routers {
            let is_border = Some(r) == border;
            let was_rp = self.routers[r.index()].suite.rp;
            self.routers[r.index()].suite = if is_border {
                ProtocolSuite::border(true)
            } else {
                ProtocolSuite::native_sparse(was_rp)
            };
        }
        // Tear down tunnels internal to the domain; border tunnels stay up
        // until the remote side also migrates.
        let doomed: Vec<LinkId> = self
            .links
            .iter()
            .filter(|l| {
                l.kind == LinkKind::Tunnel
                    && self.router(l.a.router).domain == id
                    && self.router(l.b.router).domain == id
            })
            .map(|l| l.id)
            .collect();
        for l in doomed {
            self.set_link_up(l, false);
        }
    }

    /// Total interface count across all routers, a size sanity metric.
    pub fn iface_count(&self) -> usize {
        self.routers.iter().map(|r| r.ifaces.len()).sum()
    }

    /// Checks internal consistency; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.routers.iter().enumerate() {
            if r.id.index() != i {
                return Err(format!("router {i} has mismatched id {}", r.id));
            }
            if self.domains.get(r.domain.index()).is_none() {
                return Err(format!("router {} references missing domain", r.name));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.index() != i {
                return Err(format!("link {i} has mismatched id"));
            }
            for ep in [l.a, l.b] {
                let r = self
                    .routers
                    .get(ep.router.index())
                    .ok_or_else(|| format!("link {i} references missing router"))?;
                if r.ifaces.get(ep.iface.index()).is_none() {
                    return Err(format!("link {i} references missing iface on {}", r.name));
                }
            }
        }
        for (ri, adj) in self.adjacency.iter().enumerate() {
            for l in adj {
                if !self.links.get(l.index()).is_some_and(|l| {
                    l.joins(RouterId(ri as u32), l.a.router)
                        || l.joins(RouterId(ri as u32), l.b.router)
                }) {
                    return Err(format!("adjacency of router {ri} references bad link"));
                }
            }
        }
        Ok(())
    }

    /// A leaf interface of `router`, if it has one (hosts attach here).
    pub fn leaf_of(&self, router: RouterId) -> Option<&Iface> {
        self.router(router).leaf_ifaces().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_router_topo() -> (Topology, RouterId, RouterId) {
        let mut t = Topology::new();
        let d = t.add_domain("core", DomainProtocol::Dvmrp);
        let a = t.add_router("a", Ip::new(192, 0, 2, 1), d, ProtocolSuite::mbone());
        let b = t.add_router("b", Ip::new(192, 0, 2, 2), d, ProtocolSuite::mbone());
        t.connect(a, b, LinkKind::Tunnel, 3);
        (t, a, b)
    }

    #[test]
    fn connect_creates_ifaces_and_adjacency() {
        let (t, a, b) = two_router_topo();
        assert_eq!(t.router(a).ifaces.len(), 1);
        assert_eq!(t.router(b).ifaces.len(), 1);
        assert!(t.router(a).ifaces[0].is_tunnel());
        let n: Vec<_> = t.neighbors(a).collect();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].2.router, b);
        assert!(t.link_between(a, b).is_some());
        assert!(t.link_between(b, a).is_some());
        t.validate().unwrap();
    }

    #[test]
    fn down_links_hide_neighbors() {
        let (mut t, a, b) = two_router_topo();
        let l = t.link_between(a, b).unwrap().id;
        t.set_link_up(l, false);
        assert_eq!(t.neighbors(a).count(), 0);
        assert_eq!(t.links_of(a).count(), 1, "links_of sees down links");
        t.set_link_up(l, true);
        assert_eq!(t.neighbors(a).count(), 1);
    }

    #[test]
    fn domain_migration_resuites_routers_and_drops_tunnels() {
        let (mut t, a, b) = two_router_topo();
        t.set_border(a);
        let d = t.router(a).domain;
        t.migrate_domain_to_sparse(d);
        assert_eq!(t.domain(d).protocol, DomainProtocol::NativeSparse);
        assert!(
            t.router(a).suite.pim_sm && t.router(a).suite.dvmrp,
            "border keeps DVMRP"
        );
        assert!(t.router(b).suite.pim_sm && !t.router(b).suite.dvmrp);
        // The intra-domain tunnel is torn down.
        assert!(!t.link_between(a, b).unwrap().up);
    }

    #[test]
    fn router_activation_round_trips() {
        let (mut t, a, b) = two_router_topo();
        assert!(t.is_active(a) && t.is_active(b));
        t.set_router_active(b, false);
        assert!(!t.is_active(b));
        assert_eq!(t.router_count(), 2, "deactivation never renumbers");
        t.set_router_active(b, true);
        assert!(t.is_active(b));
        t.validate().unwrap();
    }

    #[test]
    fn partition_cut_finds_interdomain_links() {
        let (mut t, a, _) = two_router_topo();
        let d2 = t.add_domain("edge", DomainProtocol::Dvmrp);
        let c = t.add_router("c", Ip::new(192, 0, 2, 3), d2, ProtocolSuite::mbone());
        let l = t.connect(a, c, LinkKind::Tunnel, 3);
        // Intra-domain a—b link is not part of the cut; the a—c uplink is.
        assert_eq!(t.partition_cut(&[d2]), vec![l]);
        assert!(t.partition_cut(&[]).is_empty());
    }

    #[test]
    fn router_by_name_and_counts() {
        let (mut t, a, _) = two_router_topo();
        t.add_leaf(a, Ip::new(10, 1, 0, 1));
        assert_eq!(t.router_by_name("a").unwrap().id, a);
        assert!(t.router_by_name("zzz").is_none());
        assert_eq!(t.router_count(), 2);
        assert_eq!(t.iface_count(), 3);
        assert!(t.leaf_of(a).is_some());
    }
}
