//! Multicast routers and their interfaces.

use serde::{Deserialize, Serialize};

use mantra_net::{DomainId, IfaceId, Ip, RouterId};

/// What an interface attaches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IfaceKind {
    /// A physical interface on a shared native link to another router.
    Physical,
    /// A DVMRP tunnel endpoint; `remote` is the far tunnel address. Tunnels
    /// are what the MBone was made of and what FIXW terminated dozens of.
    Tunnel { remote: Ip },
    /// A leaf subnet with directly-attached hosts (IGMP runs here).
    Leaf,
}

/// One multicast-capable interface — a *vif* in mrouted terminology.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Iface {
    /// Identifier local to the owning router (the mrouted vif number).
    pub id: IfaceId,
    /// The interface's own address.
    pub addr: Ip,
    /// What the interface attaches to.
    pub kind: IfaceKind,
    /// DVMRP metric of the attached link/tunnel (1 for native links,
    /// typically higher for tunnels).
    pub metric: u32,
    /// DVMRP threshold (minimum TTL forwarded); kept for CLI fidelity.
    pub threshold: u8,
}

impl Iface {
    /// True if this is a tunnel vif.
    pub fn is_tunnel(&self) -> bool {
        matches!(self.kind, IfaceKind::Tunnel { .. })
    }

    /// True if hosts (IGMP members) live on this interface.
    pub fn is_leaf(&self) -> bool {
        self.kind == IfaceKind::Leaf
    }
}

/// The multicast routing protocols a router participates in.
///
/// The evaluation period spans the transition from pure-DVMRP to native
/// sparse mode, so a router's suite can change mid-scenario (FIXW itself
/// went from MBone core router to DVMRP/native border).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolSuite {
    /// Runs DVMRP route exchange and flood-and-prune forwarding.
    pub dvmrp: bool,
    /// Runs PIM dense mode.
    pub pim_dm: bool,
    /// Runs PIM sparse mode.
    pub pim_sm: bool,
    /// Is a PIM-SM rendezvous point for its domain.
    pub rp: bool,
    /// Speaks MBGP with its peers (interdomain prefix exchange).
    pub mbgp: bool,
    /// Speaks MSDP with other RPs (interdomain source discovery).
    pub msdp: bool,
}

impl ProtocolSuite {
    /// A classic MBone router: DVMRP only.
    pub const fn mbone() -> Self {
        ProtocolSuite {
            dvmrp: true,
            pim_dm: false,
            pim_sm: false,
            rp: false,
            mbgp: false,
            msdp: false,
        }
    }

    /// A native sparse-mode border router: PIM-SM + MBGP (+ MSDP/RP when
    /// `rp` is set).
    pub const fn native_sparse(rp: bool) -> Self {
        ProtocolSuite {
            dvmrp: false,
            pim_dm: false,
            pim_sm: true,
            rp,
            mbgp: true,
            msdp: rp,
        }
    }

    /// A dense-mode campus router.
    pub const fn native_dense() -> Self {
        ProtocolSuite {
            dvmrp: false,
            pim_dm: true,
            pim_sm: false,
            rp: false,
            mbgp: false,
            msdp: false,
        }
    }

    /// A transition border router bridging DVMRP and native sparse mode —
    /// FIXW's role after the transition.
    pub const fn border(rp: bool) -> Self {
        ProtocolSuite {
            dvmrp: true,
            pim_dm: false,
            pim_sm: true,
            rp,
            mbgp: true,
            msdp: rp,
        }
    }

    /// True when any sparse-mode machinery is active.
    pub const fn is_sparse(&self) -> bool {
        self.pim_sm
    }
}

/// A multicast router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Router {
    /// Dense workspace-wide identifier.
    pub id: RouterId,
    /// Human name as it appears in monitoring output (`fixw`, `ucsb-gw`, …).
    pub name: String,
    /// Loopback/router-id address.
    pub addr: Ip,
    /// The routing domain this router belongs to.
    pub domain: DomainId,
    /// Active protocol suite (mutable across the transition).
    pub suite: ProtocolSuite,
    /// Interfaces, indexed by `IfaceId`.
    pub ifaces: Vec<Iface>,
    /// Whether the router is currently powered on. Churn scenarios take
    /// routers down and bring them back; ids stay dense either way, so a
    /// departed router is deactivated, never removed.
    pub active: bool,
}

impl Router {
    /// Adds an interface and returns its id.
    pub fn add_iface(&mut self, addr: Ip, kind: IfaceKind, metric: u32) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Iface {
            id,
            addr,
            kind,
            metric,
            threshold: 1,
        });
        id
    }

    /// Looks up an interface.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.index()]
    }

    /// Iterator over leaf interfaces (where IGMP members appear).
    pub fn leaf_ifaces(&self) -> impl Iterator<Item = &Iface> {
        self.ifaces.iter().filter(|i| i.is_leaf())
    }

    /// Number of tunnel vifs — FIXW's defining statistic in the MBone era.
    pub fn tunnel_count(&self) -> usize {
        self.ifaces.iter().filter(|i| i.is_tunnel()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router {
            id: RouterId(0),
            name: "fixw".into(),
            addr: Ip::new(198, 32, 136, 1),
            domain: DomainId(0),
            suite: ProtocolSuite::mbone(),
            ifaces: Vec::new(),
            active: true,
        }
    }

    #[test]
    fn iface_ids_are_dense() {
        let mut r = router();
        let a = r.add_iface(Ip::new(10, 0, 0, 1), IfaceKind::Physical, 1);
        let b = r.add_iface(
            Ip::new(10, 0, 1, 1),
            IfaceKind::Tunnel {
                remote: Ip::new(192, 0, 2, 1),
            },
            3,
        );
        assert_eq!(a, IfaceId(0));
        assert_eq!(b, IfaceId(1));
        assert_eq!(r.iface(b).metric, 3);
        assert!(r.iface(b).is_tunnel());
        assert!(!r.iface(a).is_tunnel());
        assert_eq!(r.tunnel_count(), 1);
    }

    #[test]
    fn leaf_iface_filter() {
        let mut r = router();
        r.add_iface(Ip::new(10, 0, 0, 1), IfaceKind::Physical, 1);
        r.add_iface(Ip::new(10, 0, 1, 1), IfaceKind::Leaf, 1);
        r.add_iface(Ip::new(10, 0, 2, 1), IfaceKind::Leaf, 1);
        assert_eq!(r.leaf_ifaces().count(), 2);
    }

    #[test]
    fn protocol_suite_presets() {
        assert!(ProtocolSuite::mbone().dvmrp);
        assert!(!ProtocolSuite::mbone().is_sparse());
        let n = ProtocolSuite::native_sparse(true);
        assert!(n.pim_sm && n.mbgp && n.msdp && n.rp && !n.dvmrp);
        let n = ProtocolSuite::native_sparse(false);
        assert!(n.pim_sm && !n.msdp && !n.rp);
        let b = ProtocolSuite::border(true);
        assert!(b.dvmrp && b.pim_sm && b.is_sparse());
        assert!(ProtocolSuite::native_dense().pim_dm);
    }
}
