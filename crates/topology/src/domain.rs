//! Routing domains.
//!
//! A domain is a campus network, a regional MBone network, or a native
//! multicast AS. Domains originate prefixes (which show up as DVMRP or MBGP
//! routes at FIXW) and have a dominant routing technology that the
//! transition scenario migrates over time.

use serde::{Deserialize, Serialize};

use mantra_net::{DomainId, Prefix, RouterId};

/// The dominant multicast routing technology inside a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainProtocol {
    /// Legacy MBone member: DVMRP routes + tunnels.
    Dvmrp,
    /// Native dense-mode (PIM-DM) — small campuses.
    NativeDense,
    /// Native sparse-mode (PIM-SM + MBGP + MSDP).
    NativeSparse,
}

/// A routing domain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Domain {
    /// Dense identifier.
    pub id: DomainId,
    /// Human name (`ucsb`, `mbone-east`, `isp-7`, …).
    pub name: String,
    /// Prefixes this domain originates into interdomain routing.
    pub prefixes: Vec<Prefix>,
    /// Current routing technology.
    pub protocol: DomainProtocol,
    /// Routers belonging to the domain.
    pub routers: Vec<RouterId>,
    /// The domain's border router (peers at the exchange point).
    pub border: Option<RouterId>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new(id: DomainId, name: impl Into<String>, protocol: DomainProtocol) -> Self {
        Domain {
            id,
            name: name.into(),
            prefixes: Vec::new(),
            protocol,
            routers: Vec::new(),
            border: None,
        }
    }

    /// True when the domain has migrated off DVMRP.
    pub fn is_native(&self) -> bool {
        self.protocol != DomainProtocol::Dvmrp
    }

    /// Migrates the domain to native sparse mode (the transition event).
    pub fn migrate_to_sparse(&mut self) {
        self.protocol = DomainProtocol::NativeSparse;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_flips_protocol() {
        let mut d = Domain::new(DomainId(3), "mbone-west", DomainProtocol::Dvmrp);
        assert!(!d.is_native());
        d.migrate_to_sparse();
        assert!(d.is_native());
        assert_eq!(d.protocol, DomainProtocol::NativeSparse);
    }

    #[test]
    fn dense_counts_as_native() {
        let d = Domain::new(DomainId(0), "lab", DomainProtocol::NativeDense);
        assert!(d.is_native());
    }
}
