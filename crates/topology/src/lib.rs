//! Topology model for the simulated multicast internetwork.
//!
//! The paper's Mantra tool monitored two real routers: the FIXW exchange
//! point and a UCSB campus `mrouted`. Neither exists any more, so this crate
//! models the internetwork they sat in:
//!
//! * [`router`] — multicast routers with their per-interface (vif)
//!   configuration and the protocol suite each one runs,
//! * [`link`] — native links and DVMRP tunnels between routers,
//! * [`domain`] — routing domains (campus networks, regional MBone
//!   networks, native-multicast ASes) and the prefixes they originate,
//! * [`graph`] — the [`graph::Topology`] container with adjacency queries
//!   and mutation support for the infrastructure-transition scenario,
//! * [`mod@reference`] — builders for the concrete internetworks the
//!   evaluation uses (MBone-era FIXW core, UCSB campus, mixed transition
//!   topology).

pub mod domain;
pub mod graph;
pub mod link;
pub mod reference;
pub mod router;

pub use domain::{Domain, DomainProtocol};
pub use graph::Topology;
pub use link::{Link, LinkId, LinkKind};
pub use router::{Iface, IfaceKind, ProtocolSuite, Router};
