//! Links between routers: native adjacencies and DVMRP tunnels.

use serde::{Deserialize, Serialize};

use mantra_net::{BitRate, IfaceId, RouterId, SimDuration};

/// Dense identifier for a link in a [`crate::Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index into the topology's link table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// The flavour of a router-to-router adjacency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// A native (physical) multicast-capable link.
    Native,
    /// A DVMRP tunnel over unicast IP — the MBone's building block.
    Tunnel,
}

/// One endpoint of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endpoint {
    /// The router at this end.
    pub router: RouterId,
    /// The interface (vif) used at this end.
    pub iface: IfaceId,
}

/// A bidirectional adjacency between two routers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Identifier within the owning topology.
    pub id: LinkId,
    /// First endpoint (construction order; links are symmetric).
    pub a: Endpoint,
    /// Second endpoint.
    pub b: Endpoint,
    /// Native link or tunnel.
    pub kind: LinkKind,
    /// DVMRP metric (tunnels usually cost more than native links).
    pub metric: u32,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Usable capacity.
    pub capacity: BitRate,
    /// Administratively up? The transition scenario tears tunnels down by
    /// clearing this, and route-flap injection toggles it.
    pub up: bool,
}

impl Link {
    /// The far end as seen from `from`, or `None` if `from` is not on
    /// this link.
    pub fn other(&self, from: RouterId) -> Option<Endpoint> {
        if self.a.router == from {
            Some(self.b)
        } else if self.b.router == from {
            Some(self.a)
        } else {
            None
        }
    }

    /// The local endpoint for `router`, or `None` when not attached.
    pub fn endpoint_of(&self, router: RouterId) -> Option<Endpoint> {
        if self.a.router == router {
            Some(self.a)
        } else if self.b.router == router {
            Some(self.b)
        } else {
            None
        }
    }

    /// True when the link joins `x` and `y` (in either order).
    pub fn joins(&self, x: RouterId, y: RouterId) -> bool {
        (self.a.router == x && self.b.router == y) || (self.a.router == y && self.b.router == x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link {
            id: LinkId(0),
            a: Endpoint {
                router: RouterId(1),
                iface: IfaceId(0),
            },
            b: Endpoint {
                router: RouterId(2),
                iface: IfaceId(3),
            },
            kind: LinkKind::Tunnel,
            metric: 3,
            delay: SimDuration::secs(0),
            capacity: BitRate::from_mbps(10),
            up: true,
        }
    }

    #[test]
    fn other_end_resolution() {
        let l = link();
        assert_eq!(l.other(RouterId(1)).unwrap().router, RouterId(2));
        assert_eq!(l.other(RouterId(2)).unwrap().router, RouterId(1));
        assert_eq!(l.other(RouterId(9)), None);
    }

    #[test]
    fn endpoint_lookup() {
        let l = link();
        assert_eq!(l.endpoint_of(RouterId(2)).unwrap().iface, IfaceId(3));
        assert_eq!(l.endpoint_of(RouterId(7)), None);
    }

    #[test]
    fn joins_is_symmetric() {
        let l = link();
        assert!(l.joins(RouterId(1), RouterId(2)));
        assert!(l.joins(RouterId(2), RouterId(1)));
        assert!(!l.joins(RouterId(1), RouterId(3)));
    }
}
