//! Reference internetworks used by the evaluation.
//!
//! Three builders mirror the paper's two collection points and the
//! infrastructure they were embedded in:
//!
//! * [`mbone_1998`] — the DVMRP-tunnel MBone with FIXW as the core
//!   exchange router and UCSB as one of the member campuses,
//! * [`ucsb_campus`] — the standalone campus `mrouted` view,
//! * [`transition_internetwork`] — the mixed world of early 1999: part of
//!   the domains already native sparse-mode (PIM-SM + MBGP + MSDP), the
//!   rest still DVMRP, with FIXW as the border between the two.

use mantra_net::{DomainId, Ip, Prefix, RouterId};

use crate::domain::DomainProtocol;
use crate::graph::Topology;
use crate::link::LinkKind;
use crate::router::ProtocolSuite;

/// Handles into a built reference topology.
#[derive(Clone, Debug)]
pub struct ReferenceTopology {
    /// The internetwork itself.
    pub topo: Topology,
    /// The FIXW exchange-point router (first collection point).
    pub fixw: RouterId,
    /// The UCSB campus gateway `mrouted` (second collection point).
    pub ucsb: RouterId,
    /// Every non-exchange domain, in construction order.
    pub member_domains: Vec<DomainId>,
}

/// Size knobs for the reference internetworks.
#[derive(Clone, Copy, Debug)]
pub struct TopologyConfig {
    /// Number of member domains (regional networks / campuses) besides UCSB.
    pub domains: usize,
    /// Internal routers per member domain.
    pub routers_per_domain: usize,
    /// Leaf subnets per internal router.
    pub leaves_per_router: usize,
    /// Fraction (0..=1) of member domains already migrated to native
    /// sparse mode; only [`transition_internetwork`] honours it.
    pub native_fraction: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            domains: 12,
            routers_per_domain: 3,
            leaves_per_router: 2,
            native_fraction: 0.0,
        }
    }
}

/// The /16 a member domain originates, derived from its index.
pub fn domain_prefix(i: usize) -> Prefix {
    Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + ((i as u32 % 256) << 16)), 16).expect("valid /16")
}

/// A leaf-subnet /24 inside a domain.
pub fn leaf_prefix(domain: usize, leaf: usize) -> Prefix {
    let base = domain_prefix(domain).network();
    Prefix::new(Ip(base.0 + ((leaf as u32 % 256) << 8)), 24).expect("valid /24")
}

fn build_member_domain(
    t: &mut Topology,
    idx: usize,
    name: String,
    protocol: DomainProtocol,
    cfg: &TopologyConfig,
) -> (DomainId, RouterId) {
    let d = t.add_domain(name.clone(), protocol);
    t.add_domain_prefix(d, domain_prefix(idx));
    let suite = match protocol {
        DomainProtocol::Dvmrp => ProtocolSuite::mbone(),
        DomainProtocol::NativeDense => ProtocolSuite::native_dense(),
        DomainProtocol::NativeSparse => ProtocolSuite::native_sparse(false),
    };
    let border_suite = match protocol {
        DomainProtocol::Dvmrp => ProtocolSuite::mbone(),
        DomainProtocol::NativeDense => ProtocolSuite::native_dense(),
        // The border of a native domain is its RP and MSDP speaker.
        DomainProtocol::NativeSparse => ProtocolSuite::native_sparse(true),
    };
    let base = domain_prefix(idx).network();
    let border = t.add_router(format!("{name}-gw"), Ip(base.0 + 1), d, border_suite);
    t.set_border(border);
    let intra_kind = if protocol == DomainProtocol::Dvmrp {
        LinkKind::Tunnel
    } else {
        LinkKind::Native
    };
    let mut leaf_no = 0usize;
    for r in 0..cfg.routers_per_domain {
        let router = t.add_router(format!("{name}-r{r}"), Ip(base.0 + 10 + r as u32), d, suite);
        t.connect(
            border,
            router,
            intra_kind,
            if intra_kind == LinkKind::Tunnel { 3 } else { 1 },
        );
        for _ in 0..cfg.leaves_per_router {
            let p = leaf_prefix(idx, leaf_no);
            leaf_no += 1;
            t.add_leaf(router, Ip(p.network().0 + 1));
        }
    }
    // The border also hosts one leaf so single-router domains have members.
    let p = leaf_prefix(idx, leaf_no);
    t.add_leaf(border, Ip(p.network().0 + 1));
    (d, border)
}

/// The MBone circa 1998: every member domain DVMRP, tunneled to FIXW.
pub fn mbone_1998(cfg: &TopologyConfig) -> ReferenceTopology {
    build(cfg, |_| DomainProtocol::Dvmrp)
}

/// Early-1999 mixed infrastructure: the leading `native_fraction` of member
/// domains run native sparse mode and MBGP-peer with FIXW over native links;
/// the rest remain DVMRP tunnels. FIXW runs the border suite (DVMRP +
/// PIM-SM + MBGP + MSDP), mirroring its historical role change.
pub fn transition_internetwork(cfg: &TopologyConfig) -> ReferenceTopology {
    let native = (cfg.domains as f64 * cfg.native_fraction).round() as usize;
    build(cfg, move |i| {
        if i < native {
            DomainProtocol::NativeSparse
        } else {
            DomainProtocol::Dvmrp
        }
    })
}

fn build(cfg: &TopologyConfig, protocol_of: impl Fn(usize) -> DomainProtocol) -> ReferenceTopology {
    let mut t = Topology::new();
    let any_native = (0..cfg.domains).any(|i| protocol_of(i) == DomainProtocol::NativeSparse);
    let exchange = t.add_domain("fixw-exchange", DomainProtocol::Dvmrp);
    let fixw_suite = if any_native {
        ProtocolSuite::border(true)
    } else {
        ProtocolSuite::mbone()
    };
    let fixw = t.add_router("fixw", Ip::new(198, 32, 136, 1), exchange, fixw_suite);
    t.set_border(fixw);

    // UCSB is always domain index 0 among members, always DVMRP in the
    // evaluation period (it ran mrouted throughout).
    let (_, ucsb_gw) = build_member_domain(&mut t, 0, "ucsb".into(), DomainProtocol::Dvmrp, cfg);
    t.connect(fixw, ucsb_gw, LinkKind::Tunnel, 3);
    let mut member_domains = vec![t.router(ucsb_gw).domain];

    for i in 1..cfg.domains {
        let protocol = protocol_of(i);
        let name = match protocol {
            DomainProtocol::Dvmrp => format!("mbone-{i}"),
            DomainProtocol::NativeDense => format!("dense-{i}"),
            DomainProtocol::NativeSparse => format!("native-{i}"),
        };
        let (d, border) = build_member_domain(&mut t, i, name, protocol, cfg);
        let (kind, metric) = if protocol == DomainProtocol::Dvmrp {
            (LinkKind::Tunnel, 3)
        } else {
            (LinkKind::Native, 1)
        };
        t.connect(fixw, border, kind, metric);
        member_domains.push(d);
    }

    debug_assert!(t.validate().is_ok());
    ReferenceTopology {
        topo: t,
        fixw,
        ucsb: ucsb_gw,
        member_domains,
    }
}

/// Size knobs hitting a target fleet-wide router count.
///
/// The router count of a reference internetwork is
/// `1 + domains * (1 + routers_per_domain)`. Up to ~2000 routers the
/// fleet grows by adding domains of 8 routers each; past that the
/// domain count pins at 250 (the /16 address plan wraps at 256 domain
/// indices) and domains grow internally instead. The achieved count is
/// within a domain's size of `target_routers`.
pub fn fleet_config(target_routers: usize, native_fraction: f64) -> TopologyConfig {
    let target = target_routers.max(3);
    let mut routers_per_domain = 7usize;
    let per_domain = routers_per_domain + 1;
    let mut domains = (target - 1 + per_domain / 2) / per_domain;
    if domains > 250 {
        domains = 250;
        routers_per_domain = (target - 1).div_ceil(domains).saturating_sub(1).max(1);
    }
    TopologyConfig {
        domains: domains.max(1),
        routers_per_domain,
        leaves_per_router: 1,
        native_fraction,
    }
}

/// A fleet-scale transition internetwork sized to roughly
/// `target_routers` routers (see [`fleet_config`] for the sizing rule):
/// hundreds of member domains hanging off the FIXW exchange, the leading
/// `native_fraction` of them already native sparse-mode. This is the
/// 1k–10k-router shape the sharded fleet monitor is evaluated on.
pub fn fleet_internetwork(target_routers: usize, native_fraction: f64) -> ReferenceTopology {
    transition_internetwork(&fleet_config(target_routers, native_fraction))
}

/// The standalone UCSB campus: a gateway `mrouted` plus internal routers and
/// leaf subnets, no exchange point. Used for the single-router Figure 9
/// scenario.
pub fn ucsb_campus(cfg: &TopologyConfig) -> ReferenceTopology {
    let mut t = Topology::new();
    let (d, gw) = build_member_domain(&mut t, 0, "ucsb".into(), DomainProtocol::Dvmrp, cfg);
    debug_assert!(t.validate().is_ok());
    ReferenceTopology {
        topo: t,
        fixw: gw, // single collection point doubles as both handles
        ucsb: gw,
        member_domains: vec![d],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbone_shape() {
        let cfg = TopologyConfig::default();
        let r = mbone_1998(&cfg);
        r.topo.validate().unwrap();
        assert_eq!(r.member_domains.len(), cfg.domains);
        // FIXW tunnels to every member domain border.
        assert_eq!(r.topo.router(r.fixw).tunnel_count(), cfg.domains);
        // Every router in member domains runs DVMRP, none run PIM.
        for router in r.topo.routers() {
            assert!(router.suite.dvmrp);
            assert!(!router.suite.pim_sm);
        }
        let expected_routers = 1 + cfg.domains * (1 + cfg.routers_per_domain);
        assert_eq!(r.topo.router_count(), expected_routers);
    }

    #[test]
    fn transition_shape() {
        let cfg = TopologyConfig {
            domains: 10,
            native_fraction: 0.4,
            ..TopologyConfig::default()
        };
        let r = transition_internetwork(&cfg);
        r.topo.validate().unwrap();
        let native_domains = r
            .topo
            .domains()
            .iter()
            .filter(|d| d.protocol == DomainProtocol::NativeSparse)
            .count();
        // UCSB (index 0) is always DVMRP; indices 1..4 are native.
        assert_eq!(native_domains, 3);
        // FIXW must be a border router: both DVMRP and sparse.
        let fixw = r.topo.router(r.fixw);
        assert!(fixw.suite.dvmrp && fixw.suite.pim_sm && fixw.suite.msdp);
        // Native domain borders are RPs.
        for d in r.topo.domains() {
            if d.protocol == DomainProtocol::NativeSparse {
                let b = r.topo.router(d.border.unwrap());
                assert!(
                    b.suite.rp && b.suite.msdp,
                    "native border {} is an RP",
                    b.name
                );
            }
        }
    }

    #[test]
    fn ucsb_campus_shape() {
        let cfg = TopologyConfig {
            domains: 1,
            routers_per_domain: 4,
            leaves_per_router: 3,
            native_fraction: 0.0,
        };
        let r = ucsb_campus(&cfg);
        r.topo.validate().unwrap();
        assert_eq!(r.topo.router_count(), 5);
        assert_eq!(r.fixw, r.ucsb);
        let gw = r.topo.router(r.ucsb);
        assert!(gw.suite.dvmrp);
        // Gateway has one leaf plus tunnels to the 4 internal routers.
        assert_eq!(gw.tunnel_count(), 4);
    }

    #[test]
    fn fleet_sizing_tracks_target() {
        for target in [50usize, 500, 2000, 10_000] {
            let cfg = fleet_config(target, 0.5);
            assert!(cfg.domains <= 250, "address plan wraps past 250 domains");
            let routers = 1 + cfg.domains * (1 + cfg.routers_per_domain);
            let err = routers.abs_diff(target) as f64 / target as f64;
            assert!(err < 0.05, "target {target} → {routers} routers");
        }
        // The built topology matches the sizing formula and validates.
        let r = fleet_internetwork(500, 0.5);
        r.topo.validate().unwrap();
        assert_eq!(r.topo.router_count(), 497);
        assert_eq!(r.member_domains.len(), 62);
        let native = r
            .topo
            .domains()
            .iter()
            .filter(|d| d.protocol == DomainProtocol::NativeSparse)
            .count();
        // round(62 * 0.5) = 31 leading domains, minus UCSB at index 0
        // which stays DVMRP throughout.
        assert_eq!(native, 30);
    }

    #[test]
    fn prefixes_are_disjoint_across_domains() {
        for i in 0..20usize {
            for j in (i + 1)..20 {
                let a = domain_prefix(i);
                let b = domain_prefix(j);
                assert!(!a.covers(b) && !b.covers(a), "{a} vs {b}");
            }
        }
        // Leaf prefixes nest inside their domain prefix.
        assert!(domain_prefix(3).covers(leaf_prefix(3, 7)));
    }
}
