//! Property-based tests for the net primitives.

use proptest::prelude::*;

use mantra_net::addr::Ip;
use mantra_net::prefix::Prefix;
use mantra_net::time::{civil_from_days, days_from_civil, SimTime};
use mantra_net::trie::PrefixTrie;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(net, len)| Prefix::new(Ip(net), len).unwrap())
}

proptest! {
    /// Parsing the display form gives back the same address.
    #[test]
    fn ip_display_parse_round_trip(v in any::<u32>()) {
        let ip = Ip(v);
        let back: Ip = ip.to_string().parse().unwrap();
        prop_assert_eq!(ip, back);
    }

    /// Prefix display/parse round trip preserves canonical form.
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    /// A prefix always contains its own network address, and its parent
    /// covers it.
    #[test]
    fn prefix_contains_self(p in arb_prefix()) {
        prop_assert!(p.contains(p.network()));
        if let Some(parent) = p.parent() {
            prop_assert!(parent.covers(p));
            prop_assert!(parent.contains(p.network()));
        }
    }

    /// Splitting a prefix and re-aggregating the children is the identity.
    #[test]
    fn prefix_split_aggregate_identity(p in arb_prefix()) {
        if let Some((l, r)) = p.children() {
            prop_assert_eq!(Prefix::aggregate(l, r), Some(p));
        }
    }

    /// The trie's longest-prefix match agrees with a brute-force scan over
    /// the inserted prefixes.
    #[test]
    fn trie_lpm_matches_brute_force(
        entries in proptest::collection::vec((arb_prefix(), any::<u16>()), 0..40),
        probe in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        // Last write wins, matching map semantics for the brute force below.
        let mut map = std::collections::HashMap::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            map.insert(*p, *v);
        }
        let ip = Ip(probe);
        let expected = map
            .iter()
            .filter(|(p, _)| p.contains(ip))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = trie.lookup(ip).map(|(p, v)| (p, *v));
        prop_assert_eq!(got, expected);
    }

    /// Trie length always matches the number of distinct stored prefixes,
    /// and iteration visits exactly those prefixes.
    #[test]
    fn trie_len_and_iter_consistent(
        entries in proptest::collection::vec(arb_prefix(), 0..60),
    ) {
        let mut trie = PrefixTrie::new();
        let mut set = std::collections::HashSet::new();
        for p in &entries {
            trie.insert(*p, ());
            set.insert(*p);
        }
        prop_assert_eq!(trie.len(), set.len());
        let visited: std::collections::HashSet<Prefix> =
            trie.iter().map(|(p, _)| p).collect();
        prop_assert_eq!(visited, set);
    }

    /// Removing everything returns the trie to empty.
    #[test]
    fn trie_remove_all(entries in proptest::collection::vec(arb_prefix(), 0..40)) {
        let mut trie = PrefixTrie::new();
        for p in &entries {
            trie.insert(*p, ());
        }
        for p in &entries {
            trie.remove(*p);
        }
        prop_assert!(trie.is_empty());
        prop_assert_eq!(trie.iter().count(), 0);
    }

    /// Civil-date conversion round trips for every day across 1970–2100.
    #[test]
    fn civil_date_round_trip(days in 0i64..47_500) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// SimTime second arithmetic is consistent with calendar decomposition.
    #[test]
    fn simtime_components_rebuild(secs in 0u64..5_000_000_000) {
        let t = SimTime(secs);
        let (y, m, d) = t.ymd();
        let (hh, mm, ss) = t.hms();
        prop_assert_eq!(SimTime::from_ymd_hms(y, m, d, hh, mm, ss), t);
    }
}

// ---------------------------------------------------------------------
// Byte-slice parsers vs the `FromStr` path
// ---------------------------------------------------------------------

use mantra_net::addr::GroupAddr;

proptest! {
    /// `Ip::parse_bytes` and `str::parse::<Ip>` accept and reject exactly
    /// the same inputs over arbitrary ASCII-ish junk.
    #[test]
    fn ip_bytes_and_str_parsers_agree(s in "[0-9+.a-f ]{0,18}") {
        prop_assert_eq!(Ip::parse_bytes(s.as_bytes()), s.parse::<Ip>());
    }

    /// Same agreement for group addresses, including class-D rejection.
    #[test]
    fn group_bytes_and_str_parsers_agree(s in "2[0-9.]{0,14}") {
        prop_assert_eq!(GroupAddr::parse_bytes(s.as_bytes()), s.parse::<GroupAddr>());
    }

    /// Same agreement for prefixes, over junk with slashes and signs.
    #[test]
    fn prefix_bytes_and_str_parsers_agree(s in "[0-9+./]{0,22}") {
        prop_assert_eq!(Prefix::parse_bytes(s.as_bytes()), s.parse::<Prefix>());
    }

    /// The byte parser round-trips every display form.
    #[test]
    fn byte_parsers_round_trip_display(v in any::<u32>(), len in 0u8..=32) {
        let ip = Ip(v);
        prop_assert_eq!(Ip::parse_bytes(ip.to_string().as_bytes()), Ok(ip));
        let p = Prefix::new(ip, len).unwrap();
        prop_assert_eq!(Prefix::parse_bytes(p.to_string().as_bytes()), Ok(p));
    }
}
