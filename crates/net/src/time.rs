//! Simulated time.
//!
//! The simulator runs on a virtual clock of whole seconds since a scenario
//! epoch. The paper's scenarios are calendar-anchored (collection started
//! 1998-11-01; the IETF peak is early December 1998; Figure 9 is a single day,
//! 1998-10-14), so [`SimTime`] also converts to and from civil dates using
//! Howard Hinnant's `days_from_civil` algorithm. Mantra's interactive-table
//! date operations reuse the same conversion.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in whole seconds.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// From minutes.
    pub const fn mins(m: u64) -> Self {
        SimDuration(m * 60)
    }

    /// From hours.
    pub const fn hours(h: u64) -> Self {
        SimDuration(h * 3_600)
    }

    /// From days.
    pub const fn days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Total seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Total fractional hours, for plotting.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Total fractional days, for plotting long series.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// Multiplying a duration by a count (e.g. `interval * tick_index`).
impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (d, rem) = (self.0 / 86_400, self.0 % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

/// An instant on the simulated clock: seconds since the Unix epoch.
///
/// Using real Unix timestamps (rather than seconds-from-scenario-start) keeps
/// calendar conversion trivial and lets scenario configs anchor themselves to
/// the paper's actual dates.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The epoch itself (1970-01-01 00:00:00).
    pub const EPOCH: SimTime = SimTime(0);

    /// Builds an instant from a civil date and time-of-day (UTC).
    ///
    /// Panics if the date is before 1970, which no scenario uses.
    pub fn from_ymd_hms(y: i32, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Self {
        let days = days_from_civil(y, m, d);
        assert!(days >= 0, "SimTime does not represent pre-epoch instants");
        SimTime(days as u64 * 86_400 + hh as u64 * 3_600 + mm as u64 * 60 + ss as u64)
    }

    /// Midnight on a civil date.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        Self::from_ymd_hms(y, m, d, 0, 0, 0)
    }

    /// Parses a user-supplied timestamp: raw Unix seconds, `YYYY-MM-DD`,
    /// or `YYYY-MM-DDTHH:MM:SS` (UTC). Shared by the CLI's time flags and
    /// the daemon's `at=`/`since=` query parameters.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Ok(secs) = s.parse::<u64>() {
            return Ok(SimTime(secs));
        }
        let bad = || format!("'{s}': expected Unix seconds or YYYY-MM-DD[THH:MM:SS]");
        let (date, time) = match s.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut ymd = date.split('-').map(|p| p.parse::<u32>().map_err(|_| bad()));
        let mut next_ymd = || ymd.next().unwrap_or_else(|| Err(bad()));
        let (y, m, d) = (next_ymd()?, next_ymd()?, next_ymd()?);
        let (hh, mm, ss) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut hms = t.split(':').map(|p| p.parse::<u32>().map_err(|_| bad()));
                let mut next = || hms.next().unwrap_or_else(|| Err(bad()));
                let out = (next()?, next()?, next()?);
                if hms.next().is_some() {
                    return Err(bad());
                }
                out
            }
        };
        if ymd.next().is_some() {
            return Err(bad());
        }
        // Range checks up front: `from_ymd_hms` panics pre-1970 and
        // silently wraps out-of-range fields.
        if !(1970..=9999).contains(&y) || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(bad());
        }
        let leap = y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
        let days_in_month = match m {
            2 => {
                if leap {
                    29
                } else {
                    28
                }
            }
            4 | 6 | 9 | 11 => 30,
            _ => 31,
        };
        if d > days_in_month {
            return Err(format!(
                "'{s}': {y:04}-{m:02} has {days_in_month} days, not {d}"
            ));
        }
        if hh > 23 || mm > 59 || ss > 59 {
            return Err(bad());
        }
        Ok(Self::from_ymd_hms(y as i32, m, d, hh, mm, ss))
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Decomposes into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days((self.0 / 86_400) as i64)
    }

    /// Decomposes the time-of-day into `(hour, minute, second)`.
    pub fn hms(self) -> (u32, u32, u32) {
        let rem = self.0 % 86_400;
        (
            (rem / 3_600) as u32,
            ((rem % 3_600) / 60) as u32,
            (rem % 60) as u32,
        )
    }

    /// Fractional hour of the day, the x-axis of the paper's Figure 9.
    pub fn hour_of_day(self) -> f64 {
        (self.0 % 86_400) as f64 / 3_600.0
    }

    /// ISO-8601 text, the format Mantra's summary tables display.
    pub fn iso8601(self) -> String {
        let (y, m, d) = self.ymd();
        let (hh, mm, ss) = self.hms();
        format!("{y:04}-{m:02}-{d:02} {hh:02}:{mm:02}:{ss:02}")
    }

    /// Elapsed time since `earlier`; saturates to zero when out of order.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso8601())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

/// Days since 1970-01-01 for a proleptic-Gregorian civil date
/// (Hinnant's `days_from_civil`).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month out of range");
    debug_assert!((1..=31).contains(&d), "day out of range");
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's `civil_from_days`).
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_19700101() {
        assert_eq!(SimTime::EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(SimTime::from_ymd(1970, 1, 1), SimTime::EPOCH);
    }

    #[test]
    fn paper_dates_round_trip() {
        // Collection start, IETF 43 and the Figure 9 incident day.
        for (y, m, d) in [
            (1998, 11, 1),
            (1998, 12, 7),
            (1998, 10, 14),
            (1999, 4, 30),
            (2000, 2, 29),
        ] {
            let t = SimTime::from_ymd(y, m, d);
            assert_eq!(t.ymd(), (y, m, d), "round trip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn known_timestamp() {
        // 1998-10-14 14:00 UTC == 908373600 (independently computed).
        let t = SimTime::from_ymd_hms(1998, 10, 14, 14, 0, 0);
        assert_eq!(t.as_secs(), 908_373_600);
        assert_eq!(t.hms(), (14, 0, 0));
        assert!((t.hour_of_day() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!(
            SimTime::from_ymd(2000, 3, 1) - SimTime::from_ymd(2000, 2, 28),
            SimDuration::days(2)
        );
        assert_eq!(
            SimTime::from_ymd(1999, 3, 1) - SimTime::from_ymd(1999, 2, 28),
            SimDuration::days(1)
        );
    }

    #[test]
    fn iso_formatting() {
        let t = SimTime::from_ymd_hms(1998, 12, 7, 9, 5, 3);
        assert_eq!(t.iso8601(), "1998-12-07 09:05:03");
        assert_eq!(t.to_string(), "1998-12-07 09:05:03");
    }

    #[test]
    fn duration_arithmetic_and_display() {
        let i = SimDuration::mins(15);
        assert_eq!(i.as_secs(), 900);
        assert_eq!(i * 4, SimDuration::hours(1));
        assert_eq!(
            (SimDuration::days(1) + SimDuration::hours(2)).to_string(),
            "1d02:00:00"
        );
        assert_eq!(SimDuration::secs(61).to_string(), "00:01:01");
        assert!((SimDuration::days(3).as_days() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_ordering_and_since() {
        let a = SimTime::from_ymd(1998, 11, 1);
        let b = a + SimDuration::hours(6);
        assert!(b > a);
        assert_eq!(b.since(a), SimDuration::hours(6));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }
}
