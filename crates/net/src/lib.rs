//! Network-layer primitives shared by the whole Mantra workspace.
//!
//! This crate provides the vocabulary types the rest of the reproduction is
//! written in:
//!
//! * [`addr`] — IPv4 addresses and class-D multicast group addresses,
//! * [`prefix`] — CIDR prefixes with containment and aggregation,
//! * [`trie`] — a binary radix trie supporting longest-prefix match, the
//!   backing store for every RIB (DVMRP, MBGP) and RPF lookup,
//! * [`rate`] — bit-rate quantities (the paper's 4 kbps sender threshold
//!   lives here as [`rate::SENDER_THRESHOLD`]),
//! * [`time`] — simulated wall-clock time with civil-date conversion, which
//!   the output interface's date/time column operations need,
//! * [`id`] — small copyable identifiers for routers, hosts and domains.
//!
//! Everything here is deterministic, allocation-light and `Copy` where
//! possible, following the hpc-parallel guide's advice on small hot types.

pub mod addr;
pub mod id;
pub mod prefix;
pub mod rate;
pub mod time;
pub mod trie;

pub use addr::{GroupAddr, Ip};
pub use id::{DomainId, HostId, IfaceId, RouterId};
pub use prefix::Prefix;
pub use rate::BitRate;
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;
