//! Small copyable identifiers.
//!
//! Routers, hosts, interfaces and domains are all identified by dense `u32`
//! indices. Dense ids let the simulator store per-entity state in flat
//! vectors instead of hash maps on hot paths, per the performance guide.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index, usable directly as a `Vec` subscript.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a multicast router in the simulated internetwork.
    RouterId,
    "r"
);
id_type!(
    /// Identifies an end host (session participant).
    HostId,
    "h"
);
id_type!(
    /// Identifies an interface (vif) local to one router.
    IfaceId,
    "if"
);
id_type!(
    /// Identifies a routing domain / autonomous system.
    DomainId,
    "d"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags() {
        assert_eq!(RouterId(3).to_string(), "r3");
        assert_eq!(HostId(0).to_string(), "h0");
        assert_eq!(IfaceId(12).to_string(), "if12");
        assert_eq!(DomainId(7).to_string(), "d7");
    }

    #[test]
    fn index_round_trip() {
        let r = RouterId::from(42u32);
        assert_eq!(r.index(), 42);
        assert_eq!(r, RouterId(42));
    }

    #[test]
    fn ids_order_by_index() {
        assert!(RouterId(1) < RouterId(2));
        assert!(DomainId(0) < DomainId(10));
    }
}
