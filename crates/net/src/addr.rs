//! IPv4 addresses and class-D multicast group addresses.
//!
//! The simulator and Mantra's parsers both traffic in dotted-quad text (the
//! router CLIs render addresses as text, and the collector parses them back),
//! so [`Ip`] implements both `Display` and `FromStr`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 32-bit IPv4 address.
///
/// Stored as a host-order `u32` so it is `Copy`, hashes as a single integer
/// and orders numerically (the order router CLIs print their tables in).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ip(pub u32);

impl Ip {
    /// Builds an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The unspecified address `0.0.0.0`, used as a wildcard source in
    /// `(*,G)` forwarding entries.
    pub const UNSPECIFIED: Ip = Ip(0);

    /// Returns the four octets most-significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// True for class-D (multicast) addresses: `224.0.0.0/4`.
    pub const fn is_multicast(self) -> bool {
        self.0 >> 28 == 0b1110
    }

    /// True for administratively-scoped multicast (`239.0.0.0/8`), which
    /// stays inside a domain and never crosses an exchange point like FIXW.
    pub const fn is_admin_scoped(self) -> bool {
        self.0 >> 24 == 239
    }

    /// True for link-local multicast (`224.0.0.0/24`), which routers never
    /// forward; Mantra's table processor filters these out of session counts.
    pub const fn is_link_local_multicast(self) -> bool {
        self.0 >> 8 == (224 << 16)
    }

    /// True for the wildcard `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }

    /// Parses dotted-quad text straight off a byte slice, without a UTF-8
    /// round trip. [`Ip::from_str`] delegates here, so the two paths are
    /// identical by construction: non-empty runs of at most three ASCII
    /// digits, values `0..=255`, exactly four dot-separated fields
    /// (leading zeros allowed, as in `1.2.3.004`).
    pub fn parse_bytes(s: &[u8]) -> Result<Self, AddrParseError> {
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in s.split(|&b| b == b'.') {
            if n == 4 {
                return Err(AddrParseError::BadShape);
            }
            if part.is_empty() || part.len() > 3 || !part.iter().all(u8::is_ascii_digit) {
                return Err(AddrParseError::BadOctet);
            }
            let mut v: u32 = 0;
            for &b in part {
                v = v * 10 + u32::from(b - b'0');
            }
            if v > 255 {
                return Err(AddrParseError::BadOctet);
            }
            octets[n] = v as u8;
            n += 1;
        }
        if n != 4 {
            return Err(AddrParseError::BadShape);
        }
        Ok(Ip::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ip({self})")
    }
}

/// Errors produced when parsing dotted-quad text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrParseError {
    /// Wrong number of dot-separated fields.
    BadShape,
    /// A field was not a decimal number in `0..=255`.
    BadOctet,
    /// A group address was required but the value is not class-D.
    NotMulticast,
}

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrParseError::BadShape => write!(f, "expected four dot-separated octets"),
            AddrParseError::BadOctet => write!(f, "octet out of range"),
            AddrParseError::NotMulticast => write!(f, "address is not class-D multicast"),
        }
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ip {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ip::parse_bytes(s.as_bytes())
    }
}

/// A validated class-D multicast group address.
///
/// Using a separate type keeps `(S,G)` state honest: the group half of a pair
/// can never accidentally hold a unicast address, which is exactly the
/// confusion behind the paper's Figure 9 anomaly (unicast routes injected
/// into a multicast table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupAddr(Ip);

impl GroupAddr {
    /// Wraps a class-D address, rejecting anything else.
    pub fn new(ip: Ip) -> Result<Self, AddrParseError> {
        if ip.is_multicast() {
            Ok(GroupAddr(ip))
        } else {
            Err(AddrParseError::NotMulticast)
        }
    }

    /// The underlying address.
    pub const fn ip(self) -> Ip {
        self.0
    }

    /// True for administratively-scoped groups (`239/8`).
    pub const fn is_admin_scoped(self) -> bool {
        self.0.is_admin_scoped()
    }

    /// True for link-local groups (`224.0.0/24`).
    pub const fn is_link_local(self) -> bool {
        self.0.is_link_local_multicast()
    }

    /// Parses a dotted-quad group address straight off a byte slice; the
    /// [`GroupAddr::from_str`] impl delegates here. Class-D validation is
    /// identical to [`GroupAddr::new`].
    pub fn parse_bytes(s: &[u8]) -> Result<Self, AddrParseError> {
        GroupAddr::new(Ip::parse_bytes(s)?)
    }

    /// Deterministically maps an index to a globally-scoped group address in
    /// `224.2.0.0/16` (the historical sdr/SAP block the paper's sessions
    /// lived in).
    pub fn from_index(i: u32) -> Self {
        GroupAddr(Ip(Ip::new(224, 2, 0, 0).0 + (i % 0x0001_0000)))
    }
}

impl fmt::Display for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Debug for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupAddr({})", self.0)
    }
}

impl FromStr for GroupAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GroupAddr::new(s.parse()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let ip = Ip::new(128, 111, 41, 7);
        assert_eq!(ip.octets(), [128, 111, 41, 7]);
        assert_eq!(ip.to_string(), "128.111.41.7");
    }

    #[test]
    fn parse_valid() {
        let ip: Ip = "224.2.127.254".parse().unwrap();
        assert_eq!(ip, Ip::new(224, 2, 127, 254));
        assert!(ip.is_multicast());
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert_eq!("1.2.3".parse::<Ip>(), Err(AddrParseError::BadShape));
        assert_eq!("1.2.3.4.5".parse::<Ip>(), Err(AddrParseError::BadShape));
        assert_eq!("1.2.3.256".parse::<Ip>(), Err(AddrParseError::BadOctet));
        assert_eq!("1.2.3.".parse::<Ip>(), Err(AddrParseError::BadOctet));
        assert_eq!("a.b.c.d".parse::<Ip>(), Err(AddrParseError::BadOctet));
        assert_eq!("1.2.3.004".parse::<Ip>(), Ok(Ip::new(1, 2, 3, 4)));
    }

    #[test]
    fn multicast_classification() {
        assert!(Ip::new(224, 0, 0, 0).is_multicast());
        assert!(Ip::new(239, 255, 255, 255).is_multicast());
        assert!(!Ip::new(223, 255, 255, 255).is_multicast());
        assert!(!Ip::new(240, 0, 0, 0).is_multicast());
        assert!(Ip::new(239, 1, 2, 3).is_admin_scoped());
        assert!(!Ip::new(238, 1, 2, 3).is_admin_scoped());
        assert!(Ip::new(224, 0, 0, 5).is_link_local_multicast());
        assert!(!Ip::new(224, 0, 1, 5).is_link_local_multicast());
    }

    #[test]
    fn group_addr_validates() {
        assert!(GroupAddr::new(Ip::new(10, 0, 0, 1)).is_err());
        let g = GroupAddr::new(Ip::new(224, 2, 0, 9)).unwrap();
        assert_eq!(g.ip(), Ip::new(224, 2, 0, 9));
        assert_eq!(
            "10.0.0.1".parse::<GroupAddr>(),
            Err(AddrParseError::NotMulticast)
        );
    }

    #[test]
    fn group_from_index_stays_in_sap_block() {
        for i in [0u32, 1, 65_535, 65_536, 1_000_000] {
            let g = GroupAddr::from_index(i);
            assert!(g.ip().is_multicast());
            assert!(!g.is_admin_scoped());
            assert!(!g.is_link_local());
            assert_eq!(g.ip().octets()[0], 224);
            assert_eq!(g.ip().octets()[1], 2);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ip::new(9, 0, 0, 0) < Ip::new(10, 0, 0, 0));
        assert!(Ip::new(10, 0, 0, 1) < Ip::new(10, 0, 1, 0));
    }
}
