//! Bit-rate quantities.
//!
//! Mantra's usage statistics are all rate-based: the 4 kbps sender threshold,
//! per-session bandwidth, aggregate traffic through FIXW, and the
//! "bandwidth saved by multicast" estimate. Rates are stored exactly in bits
//! per second as a `u64`, so classification thresholds compare without
//! floating-point surprises.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A non-negative data rate in bits per second.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitRate(pub u64);

/// The paper's classification threshold: a participant sending faster than
/// 4 kbps is a *sender*; at or below it is a *passive participant* (its
/// traffic is assumed to be RTCP-style control feedback).
pub const SENDER_THRESHOLD: BitRate = BitRate::from_kbps(4);

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0);

    /// Constructs from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Constructs from kilobits per second (1 kbps = 1000 bps).
    pub const fn from_kbps(kbps: u64) -> Self {
        BitRate(kbps * 1_000)
    }

    /// Constructs from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// The rate in bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// The rate in kilobits per second, as a float for reporting.
    pub fn kbps(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The rate in megabits per second, as a float for reporting.
    pub fn mbps(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this rate classifies its participant as a sender under the
    /// given threshold (strictly greater, per the paper's wording "sending
    /// data at a rate greater than the threshold").
    pub fn is_sender(self, threshold: BitRate) -> bool {
        self > threshold
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_sub(rhs.0))
    }

    /// Scales the rate by an integer factor (e.g. density × stream rate in
    /// the unicast-equivalent bandwidth estimate of Figure 5).
    pub const fn scale(self, factor: u64) -> BitRate {
        BitRate(self.0 * factor)
    }

    /// Bytes transferred over `seconds` at this rate.
    pub fn bytes_over(self, seconds: u64) -> u64 {
        self.0 * seconds / 8
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}

impl AddAssign for BitRate {
    fn add_assign(&mut self, rhs: BitRate) {
        self.0 += rhs.0;
    }
}

impl Sub for BitRate {
    type Output = BitRate;
    fn sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 - rhs.0)
    }
}

impl Mul<u64> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: u64) -> BitRate {
        BitRate(self.0 * rhs)
    }
}

impl Sum for BitRate {
    fn sum<I: Iterator<Item = BitRate>>(iter: I) -> Self {
        BitRate(iter.map(|r| r.0).sum())
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2} Mbps", self.mbps())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2} kbps", self.kbps())
        } else {
            write!(f, "{} bps", self.0)
        }
    }
}

impl fmt::Debug for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRate({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(BitRate::from_kbps(4).bps(), 4_000);
        assert_eq!(BitRate::from_mbps(2).bps(), 2_000_000);
        assert_eq!(BitRate::from_mbps(1), BitRate::from_kbps(1_000));
    }

    #[test]
    fn sender_threshold_is_strict() {
        assert!(!SENDER_THRESHOLD.is_sender(SENDER_THRESHOLD));
        assert!(!BitRate::from_bps(3_999).is_sender(SENDER_THRESHOLD));
        assert!(BitRate::from_bps(4_001).is_sender(SENDER_THRESHOLD));
    }

    #[test]
    fn arithmetic() {
        let a = BitRate::from_kbps(3);
        let b = BitRate::from_kbps(5);
        assert_eq!(a + b, BitRate::from_kbps(8));
        assert_eq!(b - a, BitRate::from_kbps(2));
        assert_eq!(a * 4, BitRate::from_kbps(12));
        assert_eq!(a.scale(4), BitRate::from_kbps(12));
        assert_eq!(a.saturating_sub(b), BitRate::ZERO);
        let total: BitRate = [a, b, a].into_iter().sum();
        assert_eq!(total, BitRate::from_kbps(11));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(BitRate::from_bps(512).to_string(), "512 bps");
        assert_eq!(BitRate::from_kbps(4).to_string(), "4.00 kbps");
        assert_eq!(BitRate::from_bps(2_900_000).to_string(), "2.90 Mbps");
    }

    #[test]
    fn bytes_over_period() {
        // 8 kbps for 10 s = 10 kB.
        assert_eq!(BitRate::from_kbps(8).bytes_over(10), 10_000);
    }
}
