//! CIDR prefixes.
//!
//! DVMRP route tables, MBGP RIBs and Mantra's Route table all key on
//! `address/length` prefixes. The type enforces the canonical-form invariant
//! (host bits zero) so two textual spellings of the same route compare equal,
//! which the delta logger depends on.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::addr::{AddrParseError, Ip};

/// A canonical-form CIDR prefix: `len` leading bits of `net`, host bits zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    net: Ip,
    len: u8,
}

/// Errors produced when constructing or parsing prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Length above 32.
    BadLength,
    /// The address half failed to parse.
    BadAddr(AddrParseError),
    /// Missing or malformed `/len` part.
    BadShape,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadLength => write!(f, "prefix length exceeds 32"),
            PrefixError::BadAddr(e) => write!(f, "bad network address: {e}"),
            PrefixError::BadShape => write!(f, "expected net/len"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Prefix {
    /// Builds a prefix, canonicalising by masking off host bits.
    pub fn new(net: Ip, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength);
        }
        Ok(Prefix {
            net: Ip(net.0 & mask(len)),
            len,
        })
    }

    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { net: Ip(0), len: 0 };

    /// A host route (`/32`) for a single address.
    pub fn host(ip: Ip) -> Self {
        Prefix { net: ip, len: 32 }
    }

    /// The network address (host bits are always zero).
    pub const fn network(self) -> Ip {
        self.net
    }

    /// The prefix length in bits (not a container length; see [`Self::is_default`]).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The dotted-quad netmask, as mrouted prints it.
    pub const fn netmask(self) -> Ip {
        Ip(mask(self.len))
    }

    /// True when `ip` falls inside this prefix.
    pub const fn contains(self, ip: Ip) -> bool {
        (ip.0 & mask(self.len)) == self.net.0
    }

    /// True when `other` is equal to or more specific than `self`.
    pub const fn covers(self, other: Prefix) -> bool {
        other.len >= self.len && self.contains(other.net)
    }

    /// The immediate parent (one bit shorter), or `None` at the root.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Prefix {
                net: Ip(self.net.0 & mask(len)),
                len,
            })
        }
    }

    /// The value of bit `i` (0 = most significant) of the network address.
    pub const fn bit(self, i: u8) -> bool {
        (self.net.0 >> (31 - i)) & 1 == 1
    }

    /// Splits into the two child prefixes one bit longer, when possible.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let left = Prefix { net: self.net, len };
        let right = Prefix {
            net: Ip(self.net.0 | (1 << (32 - len as u32))),
            len,
        };
        Some((left, right))
    }

    /// Parses `net/len` text straight off a byte slice, without a UTF-8
    /// round trip. [`Prefix::from_str`] delegates here, so the two paths
    /// accept exactly the same spellings: the first `/` splits address
    /// from length, the length is decimal with an optional leading `+`
    /// (as `str::parse::<u8>` accepts), and host bits canonicalise away.
    pub fn parse_bytes(s: &[u8]) -> Result<Self, PrefixError> {
        let slash = s
            .iter()
            .position(|&b| b == b'/')
            .ok_or(PrefixError::BadShape)?;
        let net = Ip::parse_bytes(&s[..slash]).map_err(PrefixError::BadAddr)?;
        let len_b = &s[slash + 1..];
        let digits = len_b.strip_prefix(b"+").unwrap_or(len_b);
        if digits.is_empty() || !digits.iter().all(u8::is_ascii_digit) {
            return Err(PrefixError::BadShape);
        }
        let mut len: u32 = 0;
        for &b in digits {
            len = len * 10 + u32::from(b - b'0');
            if len > 255 {
                return Err(PrefixError::BadShape);
            }
        }
        Prefix::new(net, len as u8)
    }

    /// Attempts to aggregate two sibling prefixes into their parent.
    ///
    /// DVMRP route aggregation (a cause of the paper's "inconsistent state"
    /// observation when done inconsistently between routers) uses this.
    pub fn aggregate(a: Prefix, b: Prefix) -> Option<Prefix> {
        if a.len != b.len || a.len == 0 || a == b {
            return None;
        }
        let p = a.parent()?;
        if b.parent() == Some(p) {
            Some(p)
        } else {
            None
        }
    }
}

/// The network mask with `len` leading ones.
const fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.net, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Prefix::parse_bytes(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        let a = Prefix::new(Ip::new(128, 111, 41, 7), 16).unwrap();
        assert_eq!(a, p("128.111.0.0/16"));
        assert_eq!(a.to_string(), "128.111.0.0/16");
    }

    #[test]
    fn rejects_long_lengths() {
        assert_eq!(Prefix::new(Ip(0), 33), Err(PrefixError::BadLength));
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let net = p("128.111.0.0/16");
        assert!(net.contains(Ip::new(128, 111, 41, 7)));
        assert!(!net.contains(Ip::new(128, 112, 0, 1)));
        assert!(net.covers(p("128.111.41.0/24")));
        assert!(!net.covers(p("128.0.0.0/8")));
        assert!(Prefix::DEFAULT.covers(net));
        assert!(Prefix::DEFAULT.contains(Ip::new(1, 2, 3, 4)));
    }

    #[test]
    fn netmask_text() {
        assert_eq!(p("10.0.0.0/8").netmask().to_string(), "255.0.0.0");
        assert_eq!(p("10.1.0.0/16").netmask().to_string(), "255.255.0.0");
        assert_eq!(Prefix::DEFAULT.netmask().to_string(), "0.0.0.0");
        assert_eq!(
            Prefix::host(Ip::new(1, 2, 3, 4)).netmask().to_string(),
            "255.255.255.255"
        );
    }

    #[test]
    fn parent_and_children() {
        let net = p("128.111.0.0/16");
        assert_eq!(net.parent(), Some(p("128.110.0.0/15")));
        let (l, r) = net.children().unwrap();
        assert_eq!(l, p("128.111.0.0/17"));
        assert_eq!(r, p("128.111.128.0/17"));
        assert_eq!(Prefix::DEFAULT.parent(), None);
        assert_eq!(Prefix::host(Ip(1)).children(), None);
    }

    #[test]
    fn aggregation() {
        let l = p("10.0.0.0/9");
        let r = p("10.128.0.0/9");
        assert_eq!(Prefix::aggregate(l, r), Some(p("10.0.0.0/8")));
        assert_eq!(Prefix::aggregate(r, l), Some(p("10.0.0.0/8")));
        // Not siblings.
        assert_eq!(Prefix::aggregate(p("10.0.0.0/9"), p("11.0.0.0/9")), None);
        // Different lengths.
        assert_eq!(Prefix::aggregate(p("10.0.0.0/9"), p("10.128.0.0/10")), None);
        // Identical prefixes don't aggregate upward.
        assert_eq!(Prefix::aggregate(l, l), None);
    }

    #[test]
    fn bit_extraction() {
        let net = p("128.0.0.0/1");
        assert!(net.bit(0));
        let net = p("64.0.0.0/2");
        assert!(!net.bit(0));
        assert!(net.bit(1));
    }
}
