//! A binary radix trie keyed by [`Prefix`], with longest-prefix match.
//!
//! Every routing information base in the workspace — the DVMRP RIB, the MBGP
//! RIB and the RPF lookup table — is a `PrefixTrie<T>`. The structure is a
//! simple path-explicit binary trie: nodes are stored in a flat arena and
//! addressed by `u32` indices, so traversal touches contiguous memory and no
//! per-node allocation happens after the arena grows.

use serde::{Deserialize, Serialize};

use crate::addr::Ip;
use crate::prefix::Prefix;

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Node<T> {
    child: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn empty() -> Self {
        Node {
            child: [NONE, NONE],
            value: None,
        }
    }
}

/// A map from CIDR prefixes to values with longest-prefix-match lookup.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie (a lone root node for `0.0.0.0/0`).
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Walks to the node for `prefix`, creating intermediate nodes.
    fn node_for_insert(&mut self, prefix: Prefix) -> usize {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let dir = prefix.bit(i) as usize;
            if self.nodes[idx].child[dir] == NONE {
                self.nodes.push(Node::empty());
                let new = (self.nodes.len() - 1) as u32;
                self.nodes[idx].child[dir] = new;
            }
            idx = self.nodes[idx].child[dir] as usize;
        }
        idx
    }

    /// Walks to the node for `prefix` without creating nodes.
    fn node_for_lookup(&self, prefix: Prefix) -> Option<usize> {
        let mut idx = 0usize;
        for i in 0..prefix.len() {
            let dir = prefix.bit(i) as usize;
            let next = self.nodes[idx].child[dir];
            if next == NONE {
                return None;
            }
            idx = next as usize;
        }
        Some(idx)
    }

    /// Inserts or replaces the value at `prefix`, returning the old value.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let idx = self.node_for_insert(prefix);
        let old = self.nodes[idx].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at exactly `prefix`.
    ///
    /// Interior nodes are left in place; tries in this workspace are rebuilt
    /// wholesale far more often than they shrink, so reclaiming interior
    /// nodes is not worth the bookkeeping.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let idx = self.node_for_lookup(prefix)?;
        let old = self.nodes[idx].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns the value stored at exactly `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let idx = self.node_for_lookup(prefix)?;
        self.nodes[idx].value.as_ref()
    }

    /// Mutable variant of [`PrefixTrie::get`].
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut T> {
        let idx = self.node_for_lookup(prefix)?;
        self.nodes[idx].value.as_mut()
    }

    /// Longest-prefix match: the most specific stored prefix containing `ip`.
    ///
    /// This is the RPF lookup every multicast routing protocol performs on
    /// each `(S,G)` source address.
    pub fn lookup(&self, ip: Ip) -> Option<(Prefix, &T)> {
        let mut idx = 0usize;
        let mut best: Option<(Prefix, &T)> = None;
        let mut net = 0u32;
        for i in 0..=32u8 {
            if let Some(v) = self.nodes[idx].value.as_ref() {
                let p = Prefix::new(Ip(net), i).expect("len <= 32");
                best = Some((p, v));
            }
            if i == 32 {
                break;
            }
            let dir = ((ip.0 >> (31 - i)) & 1) as usize;
            let next = self.nodes[idx].child[dir];
            if next == NONE {
                break;
            }
            if dir == 1 {
                net |= 1 << (31 - i);
            }
            idx = next as usize;
        }
        best
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic
    /// (numeric network, then length) trie order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            trie: self,
            stack: vec![(0, Prefix::DEFAULT)],
        }
    }

    /// Collects just the stored prefixes, in trie order.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.iter().map(|(p, _)| p).collect()
    }

    /// Removes every entry for which the predicate returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(Prefix, &T) -> bool) {
        let doomed: Vec<Prefix> = self
            .iter()
            .filter(|(p, v)| !keep(*p, v))
            .map(|(p, _)| p)
            .collect();
        for p in doomed {
            self.remove(p);
        }
    }

    /// Drops all entries but keeps the allocated arena for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::empty());
        self.len = 0;
    }
}

impl<T: Clone> PrefixTrie<T> {
    /// Builds a trie from an iterator of `(prefix, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Prefix, T)>) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in pairs {
            t.insert(p, v);
        }
        t
    }
}

/// Depth-first iterator over stored entries.
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    stack: Vec<(u32, Prefix)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((idx, prefix)) = self.stack.pop() {
            let node = &self.trie.nodes[idx as usize];
            // Push right before left so left pops first (numeric order).
            if let Some((l, r)) = prefix.children() {
                if node.child[1] != NONE {
                    self.stack.push((node.child[1], r));
                }
                if node.child[0] != NONE {
                    self.stack.push((node.child[0], l));
                }
            }
            if let Some(v) = node.value.as_ref() {
                return Some((prefix, v));
            }
        }
        None
    }
}

impl<'a, T> IntoIterator for &'a PrefixTrie<T> {
    type Item = (Prefix, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_prefix_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "ten");
        t.insert(p("10.1.0.0/16"), "ten-one");
        let ip = Ip::new(10, 1, 2, 3);
        assert_eq!(t.lookup(ip), Some((p("10.1.0.0/16"), &"ten-one")));
        assert_eq!(
            t.lookup(Ip::new(10, 2, 0, 1)),
            Some((p("10.0.0.0/8"), &"ten"))
        );
        assert_eq!(
            t.lookup(Ip::new(192, 168, 0, 1)),
            Some((p("0.0.0.0/0"), &"default"))
        );
    }

    #[test]
    fn lookup_without_default_can_miss() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert_eq!(t.lookup(Ip::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn host_route_matches_exactly() {
        let mut t = PrefixTrie::new();
        let h = Ip::new(128, 111, 41, 7);
        t.insert(Prefix::host(h), "host");
        assert_eq!(t.lookup(h), Some((Prefix::host(h), &"host")));
        assert_eq!(t.lookup(Ip::new(128, 111, 41, 8)), None);
    }

    #[test]
    fn iteration_in_numeric_order() {
        let mut t = PrefixTrie::new();
        for s in ["192.168.0.0/16", "10.0.0.0/8", "10.1.0.0/16", "0.0.0.0/0"] {
            t.insert(p(s), ());
        }
        let got: Vec<String> = t.iter().map(|(q, _)| q.to_string()).collect();
        assert_eq!(
            got,
            vec!["0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16"]
        );
    }

    #[test]
    fn retain_filters() {
        let mut t: PrefixTrie<u32> = [
            (p("10.0.0.0/8"), 1),
            (p("11.0.0.0/8"), 2),
            (p("12.0.0.0/8"), 3),
        ]
        .into_iter()
        .collect();
        t.retain(|_, v| *v % 2 == 1);
        assert_eq!(t.len(), 2);
        assert!(t.get(p("11.0.0.0/8")).is_none());
    }

    #[test]
    fn clear_keeps_reusable() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.clear();
        assert!(t.is_empty());
        t.insert(p("10.0.0.0/8"), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
    }
}
