//! DVMRP: the Distance Vector Multicast Routing Protocol (RFC 1075 as
//! deployed by `mrouted` 3.x).
//!
//! DVMRP routers exchange full route reports with their neighbors every
//! reporting interval. Each route carries a hop-count metric with infinity
//! at 32; *poison reverse* (advertising `metric + 32` back toward the
//! next hop) tells an upstream router which neighbors depend on it for a
//! source network. Routes that stop being refreshed time out, turn
//! unreachable, linger in holddown (still advertised at infinity) and are
//! finally garbage-collected.
//!
//! The paper's route-monitoring results all come from this table: the route
//! counts of Figure 7, the long-term decline of Figure 8, and the
//! unicast-injection spike of Figure 9.

use serde::{Deserialize, Serialize};

use mantra_net::{IfaceId, Ip, Prefix, PrefixTrie, RouterId, SimDuration, SimTime};

/// DVMRP metric infinity: 32 hops.
pub const INFINITY: u32 = 32;

/// Interval between full route reports (mrouted default 60 s).
pub const REPORT_INTERVAL: SimDuration = SimDuration::secs(60);

/// A route missing refreshes for this long turns unreachable (holddown).
pub const ROUTE_EXPIRY: SimDuration = SimDuration::secs(140);

/// An unreachable route is deleted this long after entering holddown.
pub const GARBAGE_TIMEOUT: SimDuration = SimDuration::secs(260);

/// The protocol timers, configurable so simulations that exchange reports at
/// a coarser cadence (e.g. once per monitoring interval) can rescale expiry
/// proportionally while preserving the ratio between refresh and timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvmrpTimers {
    /// Interval between full route reports.
    pub report_interval: SimDuration,
    /// Missing refreshes for this long puts a route in holddown.
    pub route_expiry: SimDuration,
    /// Holddown duration before deletion.
    pub garbage_timeout: SimDuration,
}

impl Default for DvmrpTimers {
    fn default() -> Self {
        DvmrpTimers {
            report_interval: REPORT_INTERVAL,
            route_expiry: ROUTE_EXPIRY,
            garbage_timeout: GARBAGE_TIMEOUT,
        }
    }
}

impl DvmrpTimers {
    /// Timers rescaled to a report cadence of `interval`, keeping mrouted's
    /// expiry/report (≈2.33) and garbage/report (≈4.33) ratios.
    pub fn scaled_to(interval: SimDuration) -> Self {
        let s = interval.as_secs();
        DvmrpTimers {
            report_interval: interval,
            route_expiry: SimDuration::secs(s * 7 / 3),
            garbage_timeout: SimDuration::secs(s * 13 / 3),
        }
    }
}

/// Life-cycle state of one route.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteState {
    /// Reachable and being refreshed.
    Valid,
    /// Expired or withdrawn: advertised at infinity until garbage-collected.
    Holddown {
        /// When the route entered holddown.
        since: SimTime,
    },
}

/// One DVMRP routing-table entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvmrpRoute {
    /// The destination (source-network) prefix.
    pub prefix: Prefix,
    /// Hop-count metric; `>= INFINITY` means unreachable.
    pub metric: u32,
    /// The neighbor the route was learned from; `None` for locally
    /// originated (directly attached) networks.
    pub next_hop: Option<RouterId>,
    /// The vif toward the next hop (RPF interface for matching sources).
    pub via_iface: IfaceId,
    /// When this route was first installed — CLI uptime comes from this.
    pub learned: SimTime,
    /// When the last refreshing report arrived.
    pub last_refresh: SimTime,
    /// Valid or holddown.
    pub state: RouteState,
    /// How many times the route has changed (metric/next-hop/state); the
    /// per-route stability statistic Mantra reports.
    pub changes: u32,
}

impl DvmrpRoute {
    /// True when usable for RPF.
    pub fn is_reachable(&self) -> bool {
        self.metric < INFINITY && self.state == RouteState::Valid
    }

    /// Route age at `now`.
    pub fn uptime(&self, now: SimTime) -> SimDuration {
        now.since(self.learned)
    }
}

/// The DVMRP routing information base of one router.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DvmrpRib {
    routes: PrefixTrie<DvmrpRoute>,
}

impl DvmrpRib {
    /// Empty RIB.
    pub fn new() -> Self {
        DvmrpRib::default()
    }

    /// Total routes, holddown included (the CLI shows both).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the RIB holds no routes at all.
    pub fn is_empty(&self) -> bool {
        self.routes.len() == 0
    }

    /// Routes currently reachable — the series plotted in Figures 7–9.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|(_, r)| r.is_reachable()).count()
    }

    /// Looks up the RPF route for a source address.
    pub fn rpf(&self, src: Ip) -> Option<&DvmrpRoute> {
        self.routes
            .lookup(src)
            .map(|(_, r)| r)
            .filter(|r| r.is_reachable())
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&DvmrpRoute> {
        self.routes.get(prefix)
    }

    /// Iterates routes in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = &DvmrpRoute> {
        self.routes.iter().map(|(_, r)| r)
    }

    fn insert(&mut self, route: DvmrpRoute) {
        self.routes.insert(route.prefix, route);
    }
}

/// The per-router DVMRP engine: RIB plus report generation/processing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DvmrpEngine {
    /// The owning router.
    pub router: RouterId,
    /// The routing table.
    pub rib: DvmrpRib,
    /// Active timer configuration.
    pub timers: DvmrpTimers,
    /// Locally originated prefixes (directly attached networks).
    local: Vec<Prefix>,
}

/// One route in a report: `(prefix, advertised metric)`.
pub type ReportEntry = (Prefix, u32);

impl DvmrpEngine {
    /// Creates an engine originating `local` prefixes at metric 1.
    pub fn new(router: RouterId, local: Vec<Prefix>, now: SimTime) -> Self {
        let mut rib = DvmrpRib::new();
        for p in &local {
            rib.insert(DvmrpRoute {
                prefix: *p,
                metric: 1,
                next_hop: None,
                via_iface: IfaceId(0),
                learned: now,
                last_refresh: now,
                state: RouteState::Valid,
                changes: 0,
            });
        }
        DvmrpEngine {
            router,
            rib,
            timers: DvmrpTimers::default(),
            local,
        }
    }

    /// The full route report to send to `neighbor`, with poison reverse:
    /// routes learned *from* that neighbor are advertised at
    /// `metric + INFINITY` (signalling dependency), everything else at its
    /// real metric capped to infinity.
    pub fn report_for(&self, neighbor: RouterId) -> Vec<ReportEntry> {
        self.rib
            .iter()
            .map(|r| {
                let m = if r.next_hop == Some(neighbor) {
                    r.metric.min(INFINITY) + INFINITY
                } else if r.state != RouteState::Valid {
                    INFINITY
                } else {
                    r.metric.min(INFINITY)
                };
                (r.prefix, m)
            })
            .collect()
    }

    /// Processes a report received from `from` over `via` with link metric
    /// `link_metric`. Returns the number of route changes applied.
    pub fn handle_report(
        &mut self,
        from: RouterId,
        via: IfaceId,
        link_metric: u32,
        report: &[ReportEntry],
        now: SimTime,
    ) -> usize {
        let mut changed = 0;
        for &(prefix, adv) in report {
            // Poison-reverse range [INFINITY, 2*INFINITY): the neighbor
            // depends on us (or holds the route unreachable). Never adopt;
            // if our route goes *through* that neighbor, it is a withdrawal.
            if adv >= INFINITY {
                if let Some(r) = self.rib.routes.get_mut(prefix) {
                    if r.next_hop == Some(from) && r.state == RouteState::Valid {
                        r.state = RouteState::Holddown { since: now };
                        r.metric = INFINITY;
                        r.changes += 1;
                        changed += 1;
                    }
                }
                continue;
            }
            let metric = (adv + link_metric).min(INFINITY);
            if metric >= INFINITY {
                continue;
            }
            match self.rib.routes.get_mut(prefix) {
                None => {
                    self.rib.insert(DvmrpRoute {
                        prefix,
                        metric,
                        next_hop: Some(from),
                        via_iface: via,
                        learned: now,
                        last_refresh: now,
                        state: RouteState::Valid,
                        changes: 0,
                    });
                    changed += 1;
                }
                Some(r) => {
                    if r.next_hop.is_none() {
                        // Never replace a directly-attached route.
                        continue;
                    }
                    let through_same = r.next_hop == Some(from);
                    let better =
                        metric < r.metric || (metric == r.metric && r.state != RouteState::Valid);
                    if through_same {
                        // Distance vector: always track the current next
                        // hop, better or worse.
                        if r.metric != metric || r.state != RouteState::Valid {
                            r.metric = metric;
                            r.state = RouteState::Valid;
                            r.changes += 1;
                            changed += 1;
                        }
                        r.via_iface = via;
                        r.last_refresh = now;
                    } else if better {
                        r.metric = metric;
                        r.next_hop = Some(from);
                        r.via_iface = via;
                        r.state = RouteState::Valid;
                        r.last_refresh = now;
                        r.changes += 1;
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Ages the table: refresh-expired routes enter holddown, holddown
    /// routes past the garbage timeout are removed. Returns
    /// `(expired, deleted)`.
    pub fn tick(&mut self, now: SimTime) -> (usize, usize) {
        let mut expired = 0;
        let mut to_delete = Vec::new();
        // Collect mutations first; the trie cannot be mutated mid-iteration.
        let prefixes: Vec<Prefix> = self.rib.routes.iter().map(|(p, _)| p).collect();
        for p in prefixes {
            let r = self.rib.routes.get_mut(p).expect("just listed");
            if r.next_hop.is_none() {
                r.last_refresh = now; // local routes never expire
                continue;
            }
            match r.state {
                RouteState::Valid => {
                    if now.since(r.last_refresh) >= self.timers.route_expiry {
                        r.state = RouteState::Holddown { since: now };
                        r.metric = INFINITY;
                        r.changes += 1;
                        expired += 1;
                    }
                }
                RouteState::Holddown { since } => {
                    if now.since(since) >= self.timers.garbage_timeout {
                        to_delete.push(p);
                    }
                }
            }
        }
        let deleted = to_delete.len();
        for p in to_delete {
            self.rib.routes.remove(p);
        }
        (expired, deleted)
    }

    /// Immediately withdraws every route learned from `neighbor` (mrouted
    /// does this when a neighbor times out or a tunnel goes down).
    pub fn neighbor_down(&mut self, neighbor: RouterId, now: SimTime) -> usize {
        let mut n = 0;
        let prefixes: Vec<Prefix> = self.rib.routes.iter().map(|(p, _)| p).collect();
        for p in prefixes {
            let r = self.rib.routes.get_mut(p).expect("just listed");
            if r.next_hop == Some(neighbor) && r.state == RouteState::Valid {
                r.state = RouteState::Holddown { since: now };
                r.metric = INFINITY;
                r.changes += 1;
                n += 1;
            }
        }
        n
    }

    /// Injects foreign routes into the table — the Figure 9 anomaly, where
    /// unicast routes leaked into an mrouted routing table. Returns how
    /// many were new.
    pub fn inject(
        &mut self,
        prefixes: impl IntoIterator<Item = Prefix>,
        metric: u32,
        from: RouterId,
        via: IfaceId,
        now: SimTime,
    ) -> usize {
        let mut added = 0;
        for p in prefixes {
            if self.rib.routes.get(p).is_none() {
                self.rib.insert(DvmrpRoute {
                    prefix: p,
                    metric: metric.min(INFINITY - 1),
                    next_hop: Some(from),
                    via_iface: via,
                    learned: now,
                    last_refresh: now,
                    state: RouteState::Valid,
                    changes: 0,
                });
                added += 1;
            }
        }
        added
    }

    /// The locally originated prefixes.
    pub fn local_prefixes(&self) -> &[Prefix] {
        &self.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn engine(id: u32, locals: &[&str]) -> DvmrpEngine {
        DvmrpEngine::new(RouterId(id), locals.iter().map(|s| p(s)).collect(), t0())
    }

    #[test]
    fn local_routes_installed_at_metric_one() {
        let e = engine(0, &["128.111.0.0/16", "10.1.0.0/24"]);
        assert_eq!(e.rib.len(), 2);
        assert_eq!(e.rib.reachable_count(), 2);
        let r = e.rib.get(p("128.111.0.0/16")).unwrap();
        assert_eq!(r.metric, 1);
        assert_eq!(r.next_hop, None);
        assert!(r.is_reachable());
    }

    #[test]
    fn learns_and_prefers_better_metric() {
        let mut e = engine(0, &["10.0.0.0/16"]);
        let report = vec![(p("128.111.0.0/16"), 2u32)];
        assert_eq!(
            e.handle_report(RouterId(1), IfaceId(0), 1, &report, t0()),
            1
        );
        assert_eq!(e.rib.get(p("128.111.0.0/16")).unwrap().metric, 3);
        // Worse offer from another neighbor is ignored.
        let worse = vec![(p("128.111.0.0/16"), 5u32)];
        assert_eq!(e.handle_report(RouterId(2), IfaceId(1), 1, &worse, t0()), 0);
        assert_eq!(
            e.rib.get(p("128.111.0.0/16")).unwrap().next_hop,
            Some(RouterId(1))
        );
        // Better offer wins.
        let better = vec![(p("128.111.0.0/16"), 1u32)];
        assert_eq!(
            e.handle_report(RouterId(2), IfaceId(1), 1, &better, t0()),
            1
        );
        let r = e.rib.get(p("128.111.0.0/16")).unwrap();
        assert_eq!((r.metric, r.next_hop), (2, Some(RouterId(2))));
    }

    #[test]
    fn current_next_hop_metric_increase_is_adopted() {
        let mut e = engine(0, &[]);
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 2)],
            t0(),
        );
        // Same neighbor now reports a worse metric — must follow it.
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 9)],
            t0(),
        );
        assert_eq!(e.rib.get(p("128.111.0.0/16")).unwrap().metric, 10);
    }

    #[test]
    fn poison_reverse_in_reports() {
        let mut e = engine(0, &["10.0.0.0/16"]);
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 2)],
            t0(),
        );
        let to_learned_from: Vec<_> = e.report_for(RouterId(1));
        let poisoned = to_learned_from
            .iter()
            .find(|(q, _)| *q == p("128.111.0.0/16"))
            .unwrap();
        assert_eq!(poisoned.1, 3 + INFINITY);
        let to_other = e.report_for(RouterId(2));
        let plain = to_other
            .iter()
            .find(|(q, _)| *q == p("128.111.0.0/16"))
            .unwrap();
        assert_eq!(plain.1, 3);
        // Local route advertised at its metric to everyone.
        assert!(to_learned_from
            .iter()
            .any(|(q, m)| *q == p("10.0.0.0/16") && *m == 1));
    }

    #[test]
    fn poisoned_advert_withdraws_route_through_that_neighbor() {
        let mut e = engine(0, &[]);
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 2)],
            t0(),
        );
        assert_eq!(e.rib.reachable_count(), 1);
        // Upstream now says unreachable.
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), INFINITY)],
            t0(),
        );
        assert_eq!(e.rib.reachable_count(), 0);
        assert_eq!(e.rib.len(), 1, "holddown keeps the entry");
    }

    #[test]
    fn expiry_and_garbage_collection() {
        let mut e = engine(0, &["10.0.0.0/16"]);
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 2)],
            t0(),
        );
        // Not yet expired.
        let (ex, del) = e.tick(t0() + SimDuration::secs(100));
        assert_eq!((ex, del), (0, 0));
        // Past expiry: holddown.
        let t_exp = t0() + ROUTE_EXPIRY;
        let (ex, _) = e.tick(t_exp);
        assert_eq!(ex, 1);
        assert_eq!(e.rib.reachable_count(), 1, "only the local route");
        assert_eq!(e.rib.len(), 2);
        // Past garbage timeout: deleted.
        let (_, del) = e.tick(t_exp + GARBAGE_TIMEOUT);
        assert_eq!(del, 1);
        assert_eq!(e.rib.len(), 1);
        // Local route never expires.
        let (ex, del) = e.tick(t_exp + SimDuration::days(30));
        assert_eq!((ex, del), (0, 0));
    }

    #[test]
    fn refresh_prevents_expiry() {
        let mut e = engine(0, &[]);
        let rpt = vec![(p("128.111.0.0/16"), 2u32)];
        e.handle_report(RouterId(1), IfaceId(0), 1, &rpt, t0());
        let mut now = t0();
        for _ in 0..10 {
            now += REPORT_INTERVAL;
            e.handle_report(RouterId(1), IfaceId(0), 1, &rpt, now);
            e.tick(now);
        }
        assert_eq!(e.rib.reachable_count(), 1);
    }

    #[test]
    fn neighbor_down_withdraws_learned_routes() {
        let mut e = engine(0, &["10.0.0.0/16"]);
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 2), (p("128.112.0.0/16"), 2)],
            t0(),
        );
        e.handle_report(
            RouterId(2),
            IfaceId(1),
            1,
            &[(p("128.113.0.0/16"), 2)],
            t0(),
        );
        assert_eq!(e.neighbor_down(RouterId(1), t0()), 2);
        assert_eq!(e.rib.reachable_count(), 2); // local + via r2
        assert!(e.rib.get(p("128.113.0.0/16")).unwrap().is_reachable());
    }

    #[test]
    fn rpf_lookup_uses_longest_reachable_prefix() {
        let mut e = engine(0, &[]);
        e.handle_report(RouterId(1), IfaceId(0), 1, &[(p("128.0.0.0/8"), 3)], t0());
        e.handle_report(
            RouterId(2),
            IfaceId(1),
            1,
            &[(p("128.111.0.0/16"), 3)],
            t0(),
        );
        let r = e.rib.rpf(Ip::new(128, 111, 41, 7)).unwrap();
        assert_eq!(r.next_hop, Some(RouterId(2)));
        let r = e.rib.rpf(Ip::new(128, 5, 0, 1)).unwrap();
        assert_eq!(r.next_hop, Some(RouterId(1)));
        assert!(e.rib.rpf(Ip::new(4, 4, 4, 4)).is_none());
    }

    #[test]
    fn injection_adds_foreign_routes_once() {
        let mut e = engine(0, &["10.0.0.0/16"]);
        let leak: Vec<Prefix> = (0..100u32)
            .map(|i| Prefix::new(Ip(Ip::new(192, 0, 0, 0).0 + (i << 8)), 24).unwrap())
            .collect();
        assert_eq!(
            e.inject(leak.clone(), 1, RouterId(9), IfaceId(0), t0()),
            100
        );
        assert_eq!(e.rib.len(), 101);
        // Re-injecting is idempotent.
        assert_eq!(e.inject(leak, 1, RouterId(9), IfaceId(0), t0()), 0);
        // Injected routes expire like any learned route.
        e.tick(t0() + ROUTE_EXPIRY);
        assert_eq!(e.rib.reachable_count(), 1);
    }

    #[test]
    fn scaled_timers_keep_mrouted_ratios() {
        let t = DvmrpTimers::scaled_to(SimDuration::mins(15));
        assert_eq!(t.report_interval, SimDuration::secs(900));
        assert_eq!(t.route_expiry, SimDuration::secs(2100));
        assert_eq!(t.garbage_timeout, SimDuration::secs(3900));
        // Default timers equal the classic constants.
        let d = DvmrpTimers::default();
        assert_eq!(d.route_expiry, ROUTE_EXPIRY);
        // Scaled expiry still survives a single lost report but not two.
        assert!(t.route_expiry > t.report_interval);
        assert!(t.route_expiry < t.report_interval * 3);
    }

    #[test]
    fn engine_honours_custom_timers() {
        let mut e = engine(0, &[]);
        e.timers = DvmrpTimers::scaled_to(SimDuration::mins(15));
        e.handle_report(
            RouterId(1),
            IfaceId(0),
            1,
            &[(p("128.111.0.0/16"), 2)],
            t0(),
        );
        // Classic expiry (140 s) would have fired; scaled expiry has not.
        let (ex, _) = e.tick(t0() + SimDuration::secs(1000));
        assert_eq!(ex, 0);
        let (ex, _) = e.tick(t0() + SimDuration::secs(2100));
        assert_eq!(ex, 1);
    }

    #[test]
    fn change_counter_tracks_instability() {
        let mut e = engine(0, &[]);
        let q = p("128.111.0.0/16");
        e.handle_report(RouterId(1), IfaceId(0), 1, &[(q, 2)], t0());
        assert_eq!(e.rib.get(q).unwrap().changes, 0);
        e.handle_report(RouterId(1), IfaceId(0), 1, &[(q, 4)], t0());
        e.handle_report(RouterId(1), IfaceId(0), 1, &[(q, 2)], t0());
        assert_eq!(e.rib.get(q).unwrap().changes, 2);
    }
}
