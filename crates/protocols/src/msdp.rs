//! MSDP: the Multicast Source Discovery Protocol.
//!
//! Rendezvous points learn about active sources in other domains through
//! Source-Active (SA) messages flooded between MSDP peers. The paper calls
//! out that MSDP had *no MIB at all*, which is precisely why Mantra scrapes
//! the `sa-cache` CLI table instead of using SNMP.
//!
//! The engine keeps the SA cache with peer-RPF acceptance (an SA for an
//! origin RP is accepted from exactly one peer — the first peer it was
//! accepted from, until it expires) and periodic re-origination/expiry, the
//! behaviour that matters for the tables Mantra collects.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mantra_net::{GroupAddr, Ip, RouterId, SimDuration, SimTime};

/// SA state lifetime without refresh (RFC 3618: SA-State period 150 s).
pub const SA_TIMEOUT: SimDuration = SimDuration::secs(150);

/// One source-active cache entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaEntry {
    /// The active source.
    pub source: Ip,
    /// The group it sends to.
    pub group: GroupAddr,
    /// The RP that originated the SA.
    pub origin_rp: RouterId,
    /// The peer we accepted the SA from (`None` when locally originated).
    pub accepted_from: Option<RouterId>,
    /// First time the entry was cached.
    pub first_seen: SimTime,
    /// Last refreshing SA.
    pub last_refresh: SimTime,
}

/// A source-active message on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaMessage {
    /// The active source.
    pub source: Ip,
    /// The group.
    pub group: GroupAddr,
    /// The originating RP.
    pub origin_rp: RouterId,
}

/// The per-RP MSDP engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MsdpEngine {
    /// The owning RP router.
    pub router: RouterId,
    cache: BTreeMap<(GroupAddr, Ip), SaEntry>,
}

impl MsdpEngine {
    /// Creates an engine for RP `router`.
    pub fn new(router: RouterId) -> Self {
        MsdpEngine {
            router,
            cache: BTreeMap::new(),
        }
    }

    /// Originates (or re-originates) an SA for a locally registered source.
    pub fn originate(&mut self, source: Ip, group: GroupAddr, now: SimTime) {
        let e = self.cache.entry((group, source)).or_insert(SaEntry {
            source,
            group,
            origin_rp: self.router,
            accepted_from: None,
            first_seen: now,
            last_refresh: now,
        });
        e.origin_rp = self.router;
        e.accepted_from = None;
        e.last_refresh = now;
    }

    /// The SA messages to send to `peer` this period: everything except
    /// entries accepted *from* that peer (split horizon).
    pub fn sa_for_peer(&self, peer: RouterId) -> Vec<SaMessage> {
        self.cache
            .values()
            .filter(|e| e.accepted_from != Some(peer) && e.origin_rp != peer)
            .map(|e| SaMessage {
                source: e.source,
                group: e.group,
                origin_rp: e.origin_rp,
            })
            .collect()
    }

    /// Processes SAs received from `from`. Peer-RPF: an entry already
    /// accepted from another peer only refreshes via that peer; SAs whose
    /// origin is ourselves are dropped. Returns newly cached count.
    pub fn handle_sa(&mut self, from: RouterId, msgs: &[SaMessage], now: SimTime) -> usize {
        let mut new = 0;
        for m in msgs {
            if m.origin_rp == self.router {
                continue;
            }
            match self.cache.get_mut(&(m.group, m.source)) {
                None => {
                    self.cache.insert(
                        (m.group, m.source),
                        SaEntry {
                            source: m.source,
                            group: m.group,
                            origin_rp: m.origin_rp,
                            accepted_from: Some(from),
                            first_seen: now,
                            last_refresh: now,
                        },
                    );
                    new += 1;
                }
                Some(e) => {
                    if e.accepted_from == Some(from) && e.origin_rp == m.origin_rp {
                        e.last_refresh = now;
                    }
                    // SAs from non-RPF peers are dropped silently.
                }
            }
        }
        new
    }

    /// Expires stale entries; returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.cache.len();
        self.cache
            .retain(|_, e| now.since(e.last_refresh) < SA_TIMEOUT);
        before - self.cache.len()
    }

    /// All cached entries in `(group, source)` order — the `sa-cache` dump.
    pub fn entries(&self) -> impl Iterator<Item = &SaEntry> {
        self.cache.values()
    }

    /// Cache size.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Known external sources for `group` — what lets a remote RP join
    /// toward interdomain senders.
    pub fn sources_for(&self, group: GroupAddr) -> Vec<Ip> {
        self.cache
            .range((group, Ip(0))..=(group, Ip(u32::MAX)))
            .map(|(_, e)| e.source)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(1999, 2, 1)
    }

    #[test]
    fn origination_and_split_horizon() {
        let mut rp = MsdpEngine::new(RouterId(1));
        rp.originate(Ip::new(128, 111, 1, 9), g(5), t0());
        assert_eq!(rp.len(), 1);
        let msgs = rp.sa_for_peer(RouterId(2));
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].origin_rp, RouterId(1));
        // Never send an SA back to its origin.
        assert!(rp.sa_for_peer(RouterId(1)).is_empty());
    }

    #[test]
    fn sa_propagation_and_rpf() {
        let mut a = MsdpEngine::new(RouterId(1));
        let mut b = MsdpEngine::new(RouterId(2));
        let mut c = MsdpEngine::new(RouterId(3));
        a.originate(Ip::new(128, 111, 1, 9), g(5), t0());
        // a -> b -> c
        assert_eq!(
            b.handle_sa(RouterId(1), &a.sa_for_peer(RouterId(2)), t0()),
            1
        );
        assert_eq!(
            c.handle_sa(RouterId(2), &b.sa_for_peer(RouterId(3)), t0()),
            1
        );
        assert_eq!(c.sources_for(g(5)), vec![Ip::new(128, 111, 1, 9)]);
        // b does not echo back to a (split horizon)...
        assert!(b.sa_for_peer(RouterId(1)).is_empty());
        // ...and a drops SAs about itself even if they arrive.
        let echo = [SaMessage {
            source: Ip::new(128, 111, 1, 9),
            group: g(5),
            origin_rp: RouterId(1),
        }];
        assert_eq!(a.handle_sa(RouterId(3), &echo, t0()), 0);
    }

    #[test]
    fn non_rpf_peer_cannot_refresh() {
        let mut b = MsdpEngine::new(RouterId(2));
        let sa = [SaMessage {
            source: Ip::new(1, 1, 1, 1),
            group: g(0),
            origin_rp: RouterId(1),
        }];
        b.handle_sa(RouterId(1), &sa, t0());
        // A copy via another peer neither duplicates nor refreshes.
        let later = t0() + SimDuration::secs(100);
        assert_eq!(b.handle_sa(RouterId(9), &sa, later), 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.entries().next().unwrap().last_refresh, t0());
    }

    #[test]
    fn expiry_without_refresh() {
        let mut b = MsdpEngine::new(RouterId(2));
        let sa = [SaMessage {
            source: Ip::new(1, 1, 1, 1),
            group: g(0),
            origin_rp: RouterId(1),
        }];
        b.handle_sa(RouterId(1), &sa, t0());
        assert_eq!(b.expire(t0() + SimDuration::secs(100)), 0);
        // RPF peer refresh extends the lifetime.
        b.handle_sa(RouterId(1), &sa, t0() + SimDuration::secs(100));
        assert_eq!(b.expire(t0() + SA_TIMEOUT), 0);
        assert_eq!(b.expire(t0() + SimDuration::secs(100) + SA_TIMEOUT), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn sources_for_filters_by_group() {
        let mut rp = MsdpEngine::new(RouterId(1));
        rp.originate(Ip::new(1, 1, 1, 1), g(0), t0());
        rp.originate(Ip::new(2, 2, 2, 2), g(0), t0());
        rp.originate(Ip::new(3, 3, 3, 3), g(1), t0());
        assert_eq!(rp.sources_for(g(0)).len(), 2);
        assert_eq!(rp.sources_for(g(1)), vec![Ip::new(3, 3, 3, 3)]);
        assert!(rp.sources_for(g(2)).is_empty());
    }
}
