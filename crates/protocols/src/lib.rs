//! From-scratch implementations of the multicast routing protocols Mantra
//! monitors, plus the shared forwarding-table (MFIB) representation.
//!
//! Each protocol module implements the state machine at the fidelity Mantra
//! can observe: the *tables* a router would show on its CLI and the
//! inter-router message exchanges that keep those tables converged (or, in
//! the failure scenarios, deliberately inconsistent):
//!
//! * [`igmp`] — host membership on leaf subnets,
//! * [`dvmrp`] — distance-vector route exchange with poison reverse,
//!   holddown and expiry; the source of the paper's Figures 7–9,
//! * [`mfib`] — `(S,G)`/`(*,G)` forwarding entries with traffic counters;
//!   the source of all usage statistics (Figures 3–6),
//! * [`pim`] — dense-mode flood/prune and sparse-mode RP trees with
//!   join/prune and the sparse-mode filtering behaviour behind Figure 6,
//! * [`mbgp`] — interdomain prefix + AS-path advertisement,
//! * [`msdp`] — source-active flooding between RPs with the RPF-peer rule.

pub mod dvmrp;
pub mod igmp;
pub mod mbgp;
pub mod mfib;
pub mod msdp;
pub mod pim;

pub use dvmrp::{DvmrpRib, DvmrpRoute};
pub use mfib::{ForwardingEntry, Mfib, SourceGroup};
