//! MBGP (multiprotocol BGP, RFC 2283) at the fidelity Mantra observes:
//! interdomain exchange of multicast-capable prefixes with AS paths.
//!
//! The engine models session-based full-table synchronisation: each peering
//! session periodically transfers the sender's full Adj-RIB-Out, and the
//! receiver *replaces* everything previously learned over that session.
//! This is coarser than incremental UPDATE messages but produces identical
//! steady-state tables, and table contents are all a monitoring tool can
//! see.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mantra_net::{DomainId, Ip, Prefix, PrefixTrie, RouterId, SimTime};

/// A route as carried in an MBGP session: prefix plus AS path (front =
/// most recent AS).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MbgpAdvert {
    /// The advertised prefix.
    pub prefix: Prefix,
    /// AS path, most-recently-prepended domain first.
    pub as_path: Vec<DomainId>,
}

/// A selected best route in the local RIB.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MbgpRoute {
    /// The prefix.
    pub prefix: Prefix,
    /// Full AS path (empty for locally originated prefixes).
    pub as_path: Vec<DomainId>,
    /// The peer the best route was learned from; `None` when local.
    pub peer: Option<RouterId>,
    /// When the current best route was selected.
    pub selected: SimTime,
}

impl MbgpRoute {
    /// Path length used in best-route selection.
    pub fn path_len(&self) -> usize {
        self.as_path.len()
    }
}

/// The per-router MBGP speaker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MbgpEngine {
    /// The owning router.
    pub router: RouterId,
    /// The router's own AS.
    pub domain: DomainId,
    local: Vec<Prefix>,
    /// Adj-RIB-In per peer.
    adj_in: BTreeMap<RouterId, Vec<MbgpAdvert>>,
    /// Loc-RIB: selected best routes, recomputed after any session sync.
    rib: PrefixTrie<MbgpRoute>,
}

impl MbgpEngine {
    /// Creates a speaker originating `local` prefixes.
    pub fn new(router: RouterId, domain: DomainId, local: Vec<Prefix>, now: SimTime) -> Self {
        let mut e = MbgpEngine {
            router,
            domain,
            local,
            adj_in: BTreeMap::new(),
            rib: PrefixTrie::new(),
        };
        e.recompute(now);
        e
    }

    /// The full Adj-RIB-Out toward `peer`: every best route whose path does
    /// not already contain the peer's AS, with our own AS prepended.
    pub fn advertisements_for(&self, peer_domain: DomainId) -> Vec<MbgpAdvert> {
        self.rib
            .iter()
            .filter(|(_, r)| !r.as_path.contains(&peer_domain))
            .map(|(p, r)| {
                let mut path = Vec::with_capacity(r.as_path.len() + 1);
                path.push(self.domain);
                path.extend_from_slice(&r.as_path);
                MbgpAdvert {
                    prefix: p,
                    as_path: path,
                }
            })
            .collect()
    }

    /// Replaces the Adj-RIB-In of the session with `peer` and reselects.
    /// Returns the number of best-route changes.
    pub fn session_sync(
        &mut self,
        peer: RouterId,
        adverts: Vec<MbgpAdvert>,
        now: SimTime,
    ) -> usize {
        // AS-path loop prevention on ingress.
        let filtered: Vec<MbgpAdvert> = adverts
            .into_iter()
            .filter(|a| !a.as_path.contains(&self.domain))
            .collect();
        self.adj_in.insert(peer, filtered);
        self.recompute(now)
    }

    /// Drops the session with `peer` (link down) and reselects.
    pub fn session_down(&mut self, peer: RouterId, now: SimTime) -> usize {
        self.adj_in.remove(&peer);
        self.recompute(now)
    }

    /// Best-route selection: local wins; otherwise shortest AS path, tie
    /// broken by lowest peer id. Returns how many prefixes changed best
    /// route.
    fn recompute(&mut self, now: SimTime) -> usize {
        let mut best: BTreeMap<Prefix, MbgpRoute> = BTreeMap::new();
        for p in &self.local {
            best.insert(
                *p,
                MbgpRoute {
                    prefix: *p,
                    as_path: Vec::new(),
                    peer: None,
                    selected: now,
                },
            );
        }
        for (&peer, adverts) in &self.adj_in {
            for a in adverts {
                let cand = MbgpRoute {
                    prefix: a.prefix,
                    as_path: a.as_path.clone(),
                    peer: Some(peer),
                    selected: now,
                };
                match best.get(&a.prefix) {
                    None => {
                        best.insert(a.prefix, cand);
                    }
                    Some(cur) => {
                        let better = cur.peer.is_some()
                            && (cand.path_len() < cur.path_len()
                                || (cand.path_len() == cur.path_len() && Some(peer) < cur.peer));
                        if better {
                            best.insert(a.prefix, cand);
                        }
                    }
                }
            }
        }
        let mut changes = 0;
        // Count differences against the previous RIB, preserving selection
        // timestamps for unchanged routes.
        let mut new_rib = PrefixTrie::new();
        for (p, mut r) in best {
            if let Some(old) = self.rib.get(p) {
                if old.as_path == r.as_path && old.peer == r.peer {
                    r.selected = old.selected;
                } else {
                    changes += 1;
                }
            } else {
                changes += 1;
            }
            new_rib.insert(p, r);
        }
        changes += self
            .rib
            .iter()
            .filter(|(p, _)| new_rib.get(*p).is_none())
            .count();
        self.rib = new_rib;
        changes
    }

    /// The Loc-RIB.
    pub fn rib(&self) -> &PrefixTrie<MbgpRoute> {
        &self.rib
    }

    /// RPF lookup for an interdomain source.
    pub fn rpf(&self, src: Ip) -> Option<&MbgpRoute> {
        self.rib.lookup(src).map(|(_, r)| r)
    }

    /// Number of selected routes — the "reachable multicast networks"
    /// statistic for the native infrastructure.
    pub fn route_count(&self) -> usize {
        self.rib.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(1999, 1, 1)
    }

    #[test]
    fn local_prefixes_selected() {
        let e = MbgpEngine::new(RouterId(0), DomainId(1), vec![p("128.111.0.0/16")], t0());
        assert_eq!(e.route_count(), 1);
        let r = e.rib().get(p("128.111.0.0/16")).unwrap();
        assert!(r.as_path.is_empty());
        assert_eq!(r.peer, None);
    }

    #[test]
    fn advertisement_prepends_own_as_and_blocks_loops() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![p("128.111.0.0/16")], t0());
        e.session_sync(
            RouterId(9),
            vec![MbgpAdvert {
                prefix: p("128.112.0.0/16"),
                as_path: vec![DomainId(2), DomainId(3)],
            }],
            t0(),
        );
        let to_d4 = e.advertisements_for(DomainId(4));
        assert_eq!(to_d4.len(), 2);
        for a in &to_d4 {
            assert_eq!(a.as_path[0], DomainId(1));
        }
        // Routes whose path contains the peer's AS are withheld.
        let to_d3 = e.advertisements_for(DomainId(3));
        assert_eq!(to_d3.len(), 1);
        assert_eq!(to_d3[0].prefix, p("128.111.0.0/16"));
    }

    #[test]
    fn ingress_loop_prevention() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![], t0());
        let n = e.session_sync(
            RouterId(9),
            vec![MbgpAdvert {
                prefix: p("128.112.0.0/16"),
                as_path: vec![DomainId(2), DomainId(1)],
            }],
            t0(),
        );
        assert_eq!(n, 0);
        assert_eq!(e.route_count(), 0);
    }

    #[test]
    fn shortest_path_wins_then_lowest_peer() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![], t0());
        let q = p("128.112.0.0/16");
        e.session_sync(
            RouterId(5),
            vec![MbgpAdvert {
                prefix: q,
                as_path: vec![DomainId(2), DomainId(3)],
            }],
            t0(),
        );
        e.session_sync(
            RouterId(7),
            vec![MbgpAdvert {
                prefix: q,
                as_path: vec![DomainId(4)],
            }],
            t0(),
        );
        assert_eq!(e.rib().get(q).unwrap().peer, Some(RouterId(7)));
        // Equal length: lowest peer id wins.
        e.session_sync(
            RouterId(3),
            vec![MbgpAdvert {
                prefix: q,
                as_path: vec![DomainId(6)],
            }],
            t0(),
        );
        assert_eq!(e.rib().get(q).unwrap().peer, Some(RouterId(3)));
    }

    #[test]
    fn local_beats_learned() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![p("128.111.0.0/16")], t0());
        e.session_sync(
            RouterId(5),
            vec![MbgpAdvert {
                prefix: p("128.111.0.0/16"),
                as_path: vec![DomainId(2)],
            }],
            t0(),
        );
        assert_eq!(e.rib().get(p("128.111.0.0/16")).unwrap().peer, None);
    }

    #[test]
    fn session_down_withdraws() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![], t0());
        let q = p("128.112.0.0/16");
        e.session_sync(
            RouterId(5),
            vec![MbgpAdvert {
                prefix: q,
                as_path: vec![DomainId(2)],
            }],
            t0(),
        );
        assert_eq!(e.route_count(), 1);
        let changes = e.session_down(RouterId(5), t0());
        assert_eq!(changes, 1);
        assert_eq!(e.route_count(), 0);
        assert!(e.rpf(Ip::new(128, 112, 3, 4)).is_none());
    }

    #[test]
    fn sync_replaces_previous_session_state() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![], t0());
        e.session_sync(
            RouterId(5),
            vec![MbgpAdvert {
                prefix: p("128.112.0.0/16"),
                as_path: vec![DomainId(2)],
            }],
            t0(),
        );
        // Next sync no longer carries the prefix: implicit withdrawal.
        e.session_sync(
            RouterId(5),
            vec![MbgpAdvert {
                prefix: p("128.113.0.0/16"),
                as_path: vec![DomainId(2)],
            }],
            t0(),
        );
        assert!(e.rib().get(p("128.112.0.0/16")).is_none());
        assert!(e.rib().get(p("128.113.0.0/16")).is_some());
    }

    #[test]
    fn selection_timestamp_preserved_for_stable_routes() {
        let mut e = MbgpEngine::new(RouterId(0), DomainId(1), vec![], t0());
        let q = p("128.112.0.0/16");
        let advert = vec![MbgpAdvert {
            prefix: q,
            as_path: vec![DomainId(2)],
        }];
        e.session_sync(RouterId(5), advert.clone(), t0());
        let later = t0() + mantra_net::SimDuration::hours(1);
        let changes = e.session_sync(RouterId(5), advert, later);
        assert_eq!(changes, 0);
        assert_eq!(e.rib().get(q).unwrap().selected, t0());
    }
}
