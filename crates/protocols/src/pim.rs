//! PIM: Protocol Independent Multicast, dense and sparse mode.
//!
//! The sparse-mode half is what drives the paper's transition findings: a
//! PIM-SM router only keeps `(*,G)`/`(S,G)` state where downstream
//! receivers exist, so after FIXW's neighbors migrated, the exchange point
//! stopped seeing single-member experimental sessions that were not
//! downstream of it (Figures 3 and 6).
//!
//! * [`RpSet`] — group-to-RP mapping via the PIMv2 hash,
//! * [`PimSmEngine`] — per-router sparse-mode state: downstream join sets
//!   per group and per source, with join/prune/expiry processing,
//! * [`PimDmEngine`] — dense-mode prune state (flood everywhere, prune
//!   where unwanted).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use mantra_net::{GroupAddr, IfaceId, Ip, RouterId, SimDuration, SimTime};

/// Join/prune state lifetime without refresh (RFC 2362 default 210 s).
pub const JOIN_TIMEOUT: SimDuration = SimDuration::secs(210);

/// Dense-mode prune lifetime (after which traffic re-floods).
pub const PRUNE_TIMEOUT: SimDuration = SimDuration::secs(180);

// ---------------------------------------------------------------------
// RP set
// ---------------------------------------------------------------------

/// The rendezvous-point set of a sparse-mode domain, mapping each group to
/// one RP with the PIMv2 hash function.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpSet {
    rps: Vec<RouterId>,
}

impl RpSet {
    /// Builds an RP set; order is irrelevant (the hash is over the sorted
    /// set so every router computes the same mapping).
    pub fn new(mut rps: Vec<RouterId>) -> Self {
        rps.sort_unstable();
        rps.dedup();
        RpSet { rps }
    }

    /// True when no RP is configured (no sparse-mode service).
    pub fn is_empty(&self) -> bool {
        self.rps.is_empty()
    }

    /// All RPs.
    pub fn rps(&self) -> &[RouterId] {
        &self.rps
    }

    /// The RP responsible for `group`, by the PIMv2-style hash
    /// (multiplicative hash over the group address, highest value wins —
    /// here reduced to an index because candidate priorities are equal).
    pub fn rp_for(&self, group: GroupAddr) -> Option<RouterId> {
        if self.rps.is_empty() {
            return None;
        }
        let g = group.ip().0;
        // RFC 2362 hash core: (1103515245 * x + 12345) per candidate; the
        // candidate with the highest value wins.
        let mut best = (0u64, self.rps[0]);
        for &rp in &self.rps {
            let x = (u64::from(g) ^ u64::from(rp.0)).wrapping_mul(1_103_515_245) + 12_345;
            let v = x % (1 << 31);
            if v >= best.0 {
                best = (v, rp);
            }
        }
        Some(best.1)
    }
}

// ---------------------------------------------------------------------
// Sparse mode
// ---------------------------------------------------------------------

/// Downstream state for one group (shared tree) on one router.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StarGState {
    /// Interfaces with joined downstream neighbors or local members, with
    /// the expiry-relevant refresh time of each.
    pub joined: BTreeMap<IfaceId, SimTime>,
    /// When the state was created.
    pub created: SimTime,
}

/// Per-router PIM-SM engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PimSmEngine {
    /// The owning router.
    pub router: RouterId,
    /// The domain's RP set.
    pub rp_set: RpSet,
    star_g: BTreeMap<GroupAddr, StarGState>,
    /// `(S,G)` downstream join state (source-specific trees).
    sg: BTreeMap<(GroupAddr, Ip), StarGState>,
}

impl PimSmEngine {
    /// New engine with the domain's RP set.
    pub fn new(router: RouterId, rp_set: RpSet) -> Self {
        PimSmEngine {
            router,
            rp_set,
            star_g: BTreeMap::new(),
            sg: BTreeMap::new(),
        }
    }

    /// Processes a `(*,G)` join arriving on `iface` (from a downstream
    /// neighbor or synthesised from local IGMP membership).
    pub fn join_star_g(&mut self, group: GroupAddr, iface: IfaceId, now: SimTime) {
        let st = self.star_g.entry(group).or_insert(StarGState {
            joined: BTreeMap::new(),
            created: now,
        });
        st.joined.insert(iface, now);
    }

    /// Processes a `(*,G)` prune from `iface`.
    pub fn prune_star_g(&mut self, group: GroupAddr, iface: IfaceId) {
        if let Some(st) = self.star_g.get_mut(&group) {
            st.joined.remove(&iface);
            if st.joined.is_empty() {
                self.star_g.remove(&group);
            }
        }
    }

    /// Processes an `(S,G)` join arriving on `iface` (SPT building).
    pub fn join_sg(&mut self, source: Ip, group: GroupAddr, iface: IfaceId, now: SimTime) {
        let st = self.sg.entry((group, source)).or_insert(StarGState {
            joined: BTreeMap::new(),
            created: now,
        });
        st.joined.insert(iface, now);
    }

    /// Processes an `(S,G)` prune from `iface`.
    pub fn prune_sg(&mut self, source: Ip, group: GroupAddr, iface: IfaceId) {
        if let Some(st) = self.sg.get_mut(&(group, source)) {
            st.joined.remove(&iface);
            if st.joined.is_empty() {
                self.sg.remove(&(group, source));
            }
        }
    }

    /// Expires join state not refreshed within [`JOIN_TIMEOUT`]. Returns
    /// `(star_g_removed, sg_removed)` counts of groups/pairs fully expired.
    pub fn expire(&mut self, now: SimTime) -> (usize, usize) {
        let mut gone_star = 0;
        self.star_g.retain(|_, st| {
            st.joined.retain(|_, t| now.since(*t) < JOIN_TIMEOUT);
            if st.joined.is_empty() {
                gone_star += 1;
                false
            } else {
                true
            }
        });
        let mut gone_sg = 0;
        self.sg.retain(|_, st| {
            st.joined.retain(|_, t| now.since(*t) < JOIN_TIMEOUT);
            if st.joined.is_empty() {
                gone_sg += 1;
                false
            } else {
                true
            }
        });
        (gone_star, gone_sg)
    }

    /// The oif set for `(*,G)`, empty when no state.
    pub fn star_g_oifs(&self, group: GroupAddr) -> Vec<IfaceId> {
        self.star_g
            .get(&group)
            .map(|st| st.joined.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The oif set for `(S,G)` including inherited `(*,G)` interfaces —
    /// PIM-SM forwards SPT traffic down the shared tree too.
    pub fn sg_oifs(&self, source: Ip, group: GroupAddr) -> Vec<IfaceId> {
        let mut set: BTreeSet<IfaceId> = self
            .sg
            .get(&(group, source))
            .map(|st| st.joined.keys().copied().collect())
            .unwrap_or_default();
        if let Some(st) = self.star_g.get(&group) {
            set.extend(st.joined.keys().copied());
        }
        set.into_iter().collect()
    }

    /// True when this router has any state for `group`.
    pub fn has_group_state(&self, group: GroupAddr) -> bool {
        self.star_g.contains_key(&group)
            || self
                .sg
                .range((group, Ip(0))..=(group, Ip(u32::MAX)))
                .next()
                .is_some()
    }

    /// Whether this router is the RP for `group`.
    pub fn is_rp_for(&self, group: GroupAddr) -> bool {
        self.rp_set.rp_for(group) == Some(self.router)
    }

    /// Groups with `(*,G)` state, in order.
    pub fn groups(&self) -> Vec<GroupAddr> {
        self.star_g.keys().copied().collect()
    }

    /// Number of `(*,G)` entries.
    pub fn star_g_count(&self) -> usize {
        self.star_g.len()
    }

    /// Number of `(S,G)` entries.
    pub fn sg_count(&self) -> usize {
        self.sg.len()
    }
}

// ---------------------------------------------------------------------
// Dense mode
// ---------------------------------------------------------------------

/// Per-router PIM-DM engine: traffic floods out every multicast interface
/// except where a prune is live.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PimDmEngine {
    /// The owning router.
    pub router: RouterId,
    /// Live prunes: `(group, source, downstream iface) -> prune time`.
    prunes: BTreeMap<(GroupAddr, Ip, IfaceId), SimTime>,
}

impl PimDmEngine {
    /// New dense-mode engine.
    pub fn new(router: RouterId) -> Self {
        PimDmEngine {
            router,
            prunes: BTreeMap::new(),
        }
    }

    /// Records a prune for `(S,G)` on a downstream interface.
    pub fn prune(&mut self, source: Ip, group: GroupAddr, iface: IfaceId, now: SimTime) {
        self.prunes.insert((group, source, iface), now);
    }

    /// A graft (a downstream member appeared) cancels a prune immediately.
    pub fn graft(&mut self, source: Ip, group: GroupAddr, iface: IfaceId) {
        self.prunes.remove(&(group, source, iface));
    }

    /// Is `(S,G)` pruned on `iface` at `now`? Prunes auto-expire after
    /// [`PRUNE_TIMEOUT`], causing periodic re-flooding — dense mode's
    /// signature overhead.
    pub fn is_pruned(&self, source: Ip, group: GroupAddr, iface: IfaceId, now: SimTime) -> bool {
        self.prunes
            .get(&(group, source, iface))
            .is_some_and(|t| now.since(*t) < PRUNE_TIMEOUT)
    }

    /// Drops expired prunes, returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.prunes.len();
        self.prunes.retain(|_, t| now.since(*t) < PRUNE_TIMEOUT);
        before - self.prunes.len()
    }

    /// Live prune count.
    pub fn prune_count(&self) -> usize {
        self.prunes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn t0() -> SimTime {
        SimTime::from_ymd(1999, 1, 15)
    }

    #[test]
    fn rp_hash_is_deterministic_and_total() {
        let set = RpSet::new(vec![RouterId(3), RouterId(1), RouterId(1), RouterId(7)]);
        assert_eq!(set.rps(), &[RouterId(1), RouterId(3), RouterId(7)]);
        for i in 0..100 {
            let rp = set.rp_for(g(i)).unwrap();
            assert!(set.rps().contains(&rp));
            assert_eq!(set.rp_for(g(i)), Some(rp), "stable per group");
        }
        // The hash spreads groups across RPs rather than picking one.
        let distinct: BTreeSet<RouterId> = (0..100).filter_map(|i| set.rp_for(g(i))).collect();
        assert!(distinct.len() > 1);
        assert_eq!(RpSet::new(vec![]).rp_for(g(0)), None);
    }

    #[test]
    fn star_g_join_prune_lifecycle() {
        let mut e = PimSmEngine::new(RouterId(0), RpSet::new(vec![RouterId(0)]));
        e.join_star_g(g(1), IfaceId(2), t0());
        e.join_star_g(g(1), IfaceId(3), t0());
        assert_eq!(e.star_g_oifs(g(1)), vec![IfaceId(2), IfaceId(3)]);
        assert!(e.has_group_state(g(1)));
        e.prune_star_g(g(1), IfaceId(2));
        assert_eq!(e.star_g_oifs(g(1)), vec![IfaceId(3)]);
        e.prune_star_g(g(1), IfaceId(3));
        assert!(!e.has_group_state(g(1)), "last prune removes state");
        assert_eq!(e.star_g_count(), 0);
    }

    #[test]
    fn sg_inherits_star_g_oifs() {
        let mut e = PimSmEngine::new(RouterId(0), RpSet::new(vec![RouterId(0)]));
        let s = Ip::new(128, 111, 1, 9);
        e.join_star_g(g(1), IfaceId(2), t0());
        e.join_sg(s, g(1), IfaceId(5), t0());
        assert_eq!(e.sg_oifs(s, g(1)), vec![IfaceId(2), IfaceId(5)]);
        // A source with no SPT joins still inherits the shared tree.
        assert_eq!(e.sg_oifs(Ip::new(9, 9, 9, 9), g(1)), vec![IfaceId(2)]);
        assert_eq!(e.sg_count(), 1);
    }

    #[test]
    fn join_state_expires_without_refresh() {
        let mut e = PimSmEngine::new(RouterId(0), RpSet::new(vec![RouterId(0)]));
        e.join_star_g(g(1), IfaceId(2), t0());
        e.join_sg(Ip::new(1, 1, 1, 1), g(2), IfaceId(0), t0());
        // Refresh only the (*,G).
        e.join_star_g(g(1), IfaceId(2), t0() + SimDuration::secs(120));
        let (star_gone, sg_gone) = e.expire(t0() + JOIN_TIMEOUT);
        assert_eq!((star_gone, sg_gone), (0, 1));
        assert!(e.has_group_state(g(1)));
        assert!(!e.has_group_state(g(2)));
    }

    #[test]
    fn is_rp_for_uses_hash() {
        let set = RpSet::new(vec![RouterId(4), RouterId(9)]);
        let e4 = PimSmEngine::new(RouterId(4), set.clone());
        let e9 = PimSmEngine::new(RouterId(9), set.clone());
        for i in 0..50 {
            let group = g(i);
            assert_eq!(
                e4.is_rp_for(group) as u8 + e9.is_rp_for(group) as u8,
                1,
                "exactly one RP per group"
            );
        }
    }

    #[test]
    fn dense_mode_prune_graft_expiry() {
        let mut e = PimDmEngine::new(RouterId(0));
        let s = Ip::new(128, 111, 1, 9);
        assert!(!e.is_pruned(s, g(1), IfaceId(2), t0()));
        e.prune(s, g(1), IfaceId(2), t0());
        assert!(e.is_pruned(s, g(1), IfaceId(2), t0() + SimDuration::secs(60)));
        // Prunes expire and the interface re-floods.
        assert!(!e.is_pruned(s, g(1), IfaceId(2), t0() + PRUNE_TIMEOUT));
        assert_eq!(e.expire(t0() + PRUNE_TIMEOUT), 1);
        assert_eq!(e.prune_count(), 0);
        // Graft cancels a live prune.
        e.prune(s, g(1), IfaceId(2), t0());
        e.graft(s, g(1), IfaceId(2));
        assert!(!e.is_pruned(s, g(1), IfaceId(2), t0()));
    }
}
