//! IGMPv2-style group membership on leaf subnets.
//!
//! Hosts report membership; the router keeps per-`(interface, group)` state
//! with a membership timer refreshed by reports. This is the "lack of
//! information about receivers" the paper describes: the router knows *that*
//! a group has members on an interface and a report count, not who the
//! far-away receivers are.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mantra_net::{GroupAddr, HostId, IfaceId, SimDuration, SimTime};

/// Membership state for one group on one interface.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Membership {
    /// Hosts currently joined on this interface.
    pub members: Vec<HostId>,
    /// When the newest report arrived.
    pub last_report: SimTime,
    /// When the first join created the state.
    pub since: SimTime,
}

/// The IGMP querier state of one router.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IgmpState {
    table: BTreeMap<(IfaceId, GroupAddr), Membership>,
}

/// How long membership survives without a refresh report
/// (IGMPv2 default: 125 s query interval × 2 robustness + 10 s).
pub const MEMBERSHIP_TIMEOUT: SimDuration = SimDuration::secs(260);

impl IgmpState {
    /// An empty querier.
    pub fn new() -> Self {
        IgmpState::default()
    }

    /// A host joins a group on an interface (an unsolicited report).
    pub fn join(&mut self, iface: IfaceId, group: GroupAddr, host: HostId, now: SimTime) {
        let m = self.table.entry((iface, group)).or_insert(Membership {
            members: Vec::new(),
            last_report: now,
            since: now,
        });
        if !m.members.contains(&host) {
            m.members.push(host);
        }
        m.last_report = now;
    }

    /// A host leaves a group (IGMPv2 leave message). State is removed when
    /// the last member leaves.
    pub fn leave(&mut self, iface: IfaceId, group: GroupAddr, host: HostId) {
        if let Some(m) = self.table.get_mut(&(iface, group)) {
            m.members.retain(|h| *h != host);
            if m.members.is_empty() {
                self.table.remove(&(iface, group));
            }
        }
    }

    /// Refreshes all memberships (response to a general query).
    pub fn refresh_all(&mut self, now: SimTime) {
        for m in self.table.values_mut() {
            m.last_report = now;
        }
    }

    /// Expires memberships whose timer has run out. Returns expired count.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.table.len();
        self.table
            .retain(|_, m| now.since(m.last_report) < MEMBERSHIP_TIMEOUT);
        before - self.table.len()
    }

    /// True when `group` has members on `iface`.
    pub fn has_members(&self, iface: IfaceId, group: GroupAddr) -> bool {
        self.table.contains_key(&(iface, group))
    }

    /// Interfaces with members for `group` — the oif set IGMP contributes.
    pub fn member_ifaces(&self, group: GroupAddr) -> Vec<IfaceId> {
        self.table
            .keys()
            .filter(|(_, g)| *g == group)
            .map(|(i, _)| *i)
            .collect()
    }

    /// All groups with local members anywhere on the router.
    pub fn local_groups(&self) -> Vec<GroupAddr> {
        let mut gs: Vec<GroupAddr> = self.table.keys().map(|(_, g)| *g).collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    /// Total membership rows (one per interface–group).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no membership state exists.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates `(iface, group, membership)` in table order.
    pub fn iter(&self) -> impl Iterator<Item = (IfaceId, GroupAddr, &Membership)> {
        self.table.iter().map(|((i, g), m)| (*i, *g, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    #[test]
    fn join_creates_and_dedups() {
        let mut s = IgmpState::new();
        s.join(IfaceId(0), g(1), HostId(1), t0());
        s.join(IfaceId(0), g(1), HostId(1), t0());
        s.join(IfaceId(0), g(1), HostId(2), t0());
        assert_eq!(s.len(), 1);
        assert!(s.has_members(IfaceId(0), g(1)));
        let (_, _, m) = s.iter().next().unwrap();
        assert_eq!(m.members.len(), 2);
    }

    #[test]
    fn leave_removes_state_when_last_member_goes() {
        let mut s = IgmpState::new();
        s.join(IfaceId(0), g(1), HostId(1), t0());
        s.join(IfaceId(0), g(1), HostId(2), t0());
        s.leave(IfaceId(0), g(1), HostId(1));
        assert!(s.has_members(IfaceId(0), g(1)));
        s.leave(IfaceId(0), g(1), HostId(2));
        assert!(!s.has_members(IfaceId(0), g(1)));
        assert!(s.is_empty());
        // Leaving something never joined is a no-op.
        s.leave(IfaceId(3), g(9), HostId(9));
    }

    #[test]
    fn expiry_honours_timeout() {
        let mut s = IgmpState::new();
        s.join(IfaceId(0), g(1), HostId(1), t0());
        s.join(IfaceId(1), g(2), HostId(2), t0());
        let later = t0() + SimDuration::secs(100);
        s.join(IfaceId(1), g(2), HostId(2), later); // refresh one
        let expired = s.expire(t0() + MEMBERSHIP_TIMEOUT);
        assert_eq!(expired, 1);
        assert!(s.has_members(IfaceId(1), g(2)));
        // refresh_all rescues the survivor indefinitely.
        s.refresh_all(t0() + SimDuration::days(1));
        assert_eq!(s.expire(t0() + SimDuration::days(1)), 0);
    }

    #[test]
    fn member_ifaces_and_local_groups() {
        let mut s = IgmpState::new();
        s.join(IfaceId(0), g(1), HostId(1), t0());
        s.join(IfaceId(2), g(1), HostId(2), t0());
        s.join(IfaceId(0), g(3), HostId(3), t0());
        assert_eq!(s.member_ifaces(g(1)), vec![IfaceId(0), IfaceId(2)]);
        assert_eq!(s.member_ifaces(g(7)), Vec::<IfaceId>::new());
        assert_eq!(s.local_groups(), vec![g(1), g(3)]);
    }
}
