//! The multicast forwarding information base (MFIB).
//!
//! Every multicast routing protocol ultimately installs `(S,G)` (and, for
//! PIM-SM, `(*,G)`) entries into the router's forwarding table. Mantra's
//! entire usage-monitoring pipeline (the paper's Figures 3–6) is derived
//! from periodic captures of these tables, so the representation carries
//! exactly the fields the paper's Pair/Session/Participant tables need:
//! incoming interface, outgoing interface list, packet/byte counters and a
//! smoothed rate estimate.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mantra_net::{BitRate, GroupAddr, IfaceId, Ip, SimTime};

/// A source–group pair; the wildcard source (`0.0.0.0`) encodes `(*,G)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceGroup {
    /// The destination group. Declared first so the derived ordering sorts
    /// by group then source — the order `show ip mroute` lists entries in,
    /// and the invariant [`Mfib::group_count`] exploits.
    pub group: GroupAddr,
    /// The sending host, or [`Ip::UNSPECIFIED`] for a shared-tree entry.
    pub source: Ip,
}

impl SourceGroup {
    /// An `(S,G)` entry key.
    pub fn sg(source: Ip, group: GroupAddr) -> Self {
        SourceGroup { group, source }
    }

    /// A `(*,G)` entry key.
    pub fn star_g(group: GroupAddr) -> Self {
        SourceGroup {
            group,
            source: Ip::UNSPECIFIED,
        }
    }

    /// True for `(*,G)` keys.
    pub fn is_wildcard(&self) -> bool {
        self.source.is_unspecified()
    }
}

impl std::fmt::Display for SourceGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_wildcard() {
            write!(f, "(*, {})", self.group)
        } else {
            write!(f, "({}, {})", self.source, self.group)
        }
    }
}

/// Which protocol installed a forwarding entry. Mantra's Session table
/// records "the protocol that first advertised" a session, so the MFIB
/// keeps the provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryOrigin {
    /// DVMRP flood-and-prune.
    Dvmrp,
    /// PIM dense-mode flood/prune.
    PimDm,
    /// PIM sparse-mode join.
    PimSm,
    /// Created because an MSDP source-active advertisement was joined.
    Msdp,
    /// Locally attached member/sender (IGMP).
    Local,
}

impl EntryOrigin {
    /// The name router CLIs print in entry flags.
    pub fn label(self) -> &'static str {
        match self {
            EntryOrigin::Dvmrp => "DVMRP",
            EntryOrigin::PimDm => "PIM-DM",
            EntryOrigin::PimSm => "PIM-SM",
            EntryOrigin::Msdp => "MSDP",
            EntryOrigin::Local => "LOCAL",
        }
    }
}

/// One forwarding-table entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForwardingEntry {
    /// The `(S,G)` or `(*,G)` key.
    pub key: SourceGroup,
    /// RPF / incoming interface.
    pub iif: IfaceId,
    /// Outgoing interfaces. Empty means the entry is in the *pruned* state
    /// — present in the table (and therefore visible to Mantra) but not
    /// forwarding; the signature of flood-and-prune protocols.
    pub oifs: Vec<IfaceId>,
    /// Which protocol created the entry.
    pub origin: EntryOrigin,
    /// When the entry was created (CLI shows this as entry uptime).
    pub created: SimTime,
    /// When traffic or protocol activity last refreshed it.
    pub last_active: SimTime,
    /// Cumulative packets forwarded.
    pub packets: u64,
    /// Cumulative bytes forwarded.
    pub bytes: u64,
    /// Smoothed current rate (what Mantra's Pair table reports as the
    /// current bandwidth of the pair).
    pub rate: BitRate,
}

impl ForwardingEntry {
    /// A fresh entry with zeroed counters.
    pub fn new(key: SourceGroup, iif: IfaceId, origin: EntryOrigin, now: SimTime) -> Self {
        ForwardingEntry {
            key,
            iif,
            oifs: Vec::new(),
            origin,
            created: now,
            last_active: now,
            packets: 0,
            bytes: 0,
            rate: BitRate::ZERO,
        }
    }

    /// True when the entry is pruned (no outgoing interfaces).
    pub fn is_pruned(&self) -> bool {
        self.oifs.is_empty()
    }

    /// Accounts `rate` worth of traffic over `seconds`, updating counters
    /// and the smoothed rate estimate (EWMA with α = 1/2, matching the
    /// coarse averaging a 1998 router cache would expose).
    pub fn account_traffic(&mut self, rate: BitRate, seconds: u64, now: SimTime) {
        let bytes = rate.bytes_over(seconds);
        self.bytes += bytes;
        // Model ~500-byte datagrams, the MBone audio/video sweet spot.
        self.packets += bytes / 500 + u64::from(!bytes.is_multiple_of(500) && bytes > 0);
        self.rate = BitRate((self.rate.bps() + rate.bps()) / 2);
        if rate > BitRate::ZERO {
            self.last_active = now;
        }
    }
}

/// A router's multicast forwarding table.
///
/// Keys are kept in a `BTreeMap` so iteration (and therefore every CLI dump
/// Mantra scrapes) is deterministically ordered — snapshot diffs in the
/// delta logger rely on this.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Mfib {
    entries: BTreeMap<SourceGroup, ForwardingEntry>,
}

impl Mfib {
    /// An empty table.
    pub fn new() -> Self {
        Mfib::default()
    }

    /// Number of entries, pruned included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs or returns the existing entry for `key`.
    pub fn entry(
        &mut self,
        key: SourceGroup,
        iif: IfaceId,
        origin: EntryOrigin,
        now: SimTime,
    ) -> &mut ForwardingEntry {
        self.entries
            .entry(key)
            .or_insert_with(|| ForwardingEntry::new(key, iif, origin, now))
    }

    /// Looks up an entry.
    pub fn get(&self, key: &SourceGroup) -> Option<&ForwardingEntry> {
        self.entries.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &SourceGroup) -> Option<&mut ForwardingEntry> {
        self.entries.get_mut(key)
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &SourceGroup) -> Option<ForwardingEntry> {
        self.entries.remove(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &ForwardingEntry> {
        self.entries.values()
    }

    /// Mutable iteration in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ForwardingEntry> {
        self.entries.values_mut()
    }

    /// Drops entries idle since before `cutoff` (cache expiry). Returns how
    /// many were removed.
    pub fn expire_idle(&mut self, cutoff: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.last_active >= cutoff);
        before - self.entries.len()
    }

    /// Distinct groups with at least one entry.
    pub fn group_count(&self) -> usize {
        let mut last = None;
        let mut n = 0;
        for k in self.entries.keys() {
            if last != Some(k.group) {
                n += 1;
                last = Some(k.group);
            }
        }
        n
    }

    /// Distinct non-wildcard sources.
    pub fn source_count(&self) -> usize {
        let set: std::collections::BTreeSet<Ip> = self
            .entries
            .keys()
            .filter(|k| !k.is_wildcard())
            .map(|k| k.source)
            .collect();
        set.len()
    }

    /// Aggregate smoothed rate over all `(S,G)` entries — the "multicast
    /// traffic through the router" series of Figure 5.
    pub fn total_rate(&self) -> BitRate {
        self.entries
            .values()
            .filter(|e| !e.key.is_wildcard())
            .map(|e| e.rate)
            .sum()
    }

    /// Clears all entries (router reboot injection).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn now() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    #[test]
    fn star_g_and_sg_keys() {
        let sg = SourceGroup::sg(Ip::new(1, 2, 3, 4), g(0));
        let star = SourceGroup::star_g(g(0));
        assert!(!sg.is_wildcard());
        assert!(star.is_wildcard());
        assert_eq!(star.to_string(), "(*, 224.2.0.0)");
        assert_eq!(sg.to_string(), "(1.2.3.4, 224.2.0.0)");
    }

    #[test]
    fn entry_traffic_accounting() {
        let mut e = ForwardingEntry::new(
            SourceGroup::sg(Ip::new(1, 1, 1, 1), g(1)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            now(),
        );
        assert!(e.is_pruned());
        e.oifs.push(IfaceId(1));
        assert!(!e.is_pruned());
        e.account_traffic(
            BitRate::from_kbps(8),
            10,
            now() + mantra_net::SimDuration::secs(10),
        );
        assert_eq!(e.bytes, 10_000);
        assert_eq!(e.packets, 20);
        assert_eq!(e.rate, BitRate::from_kbps(4)); // EWMA from 0
        assert!(e.last_active > e.created);
    }

    #[test]
    fn zero_rate_does_not_refresh() {
        let mut e = ForwardingEntry::new(
            SourceGroup::sg(Ip::new(1, 1, 1, 1), g(1)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            now(),
        );
        let later = now() + mantra_net::SimDuration::hours(1);
        e.account_traffic(BitRate::ZERO, 60, later);
        assert_eq!(e.last_active, now());
        assert_eq!(e.bytes, 0);
    }

    #[test]
    fn mfib_group_and_source_counts() {
        let mut m = Mfib::new();
        let s1 = Ip::new(1, 0, 0, 1);
        let s2 = Ip::new(2, 0, 0, 1);
        m.entry(
            SourceGroup::sg(s1, g(0)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            now(),
        );
        m.entry(
            SourceGroup::sg(s2, g(0)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            now(),
        );
        m.entry(
            SourceGroup::sg(s1, g(1)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            now(),
        );
        m.entry(
            SourceGroup::star_g(g(2)),
            IfaceId(0),
            EntryOrigin::PimSm,
            now(),
        );
        assert_eq!(m.len(), 4);
        assert_eq!(m.group_count(), 3);
        assert_eq!(m.source_count(), 2);
    }

    #[test]
    fn expiry_drops_idle_entries() {
        let mut m = Mfib::new();
        let t0 = now();
        let t1 = t0 + mantra_net::SimDuration::mins(10);
        m.entry(
            SourceGroup::sg(Ip::new(1, 0, 0, 1), g(0)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            t0,
        );
        let e = m.entry(
            SourceGroup::sg(Ip::new(2, 0, 0, 1), g(1)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            t0,
        );
        e.account_traffic(BitRate::from_kbps(100), 60, t1);
        assert_eq!(m.expire_idle(t0 + mantra_net::SimDuration::mins(5)), 1);
        assert_eq!(m.len(), 1);
        assert!(m.get(&SourceGroup::sg(Ip::new(2, 0, 0, 1), g(1))).is_some());
    }

    #[test]
    fn total_rate_excludes_wildcards() {
        let mut m = Mfib::new();
        let t = now();
        let e = m.entry(
            SourceGroup::sg(Ip::new(1, 0, 0, 1), g(0)),
            IfaceId(0),
            EntryOrigin::PimSm,
            t,
        );
        e.rate = BitRate::from_kbps(64);
        let e = m.entry(SourceGroup::star_g(g(0)), IfaceId(0), EntryOrigin::PimSm, t);
        e.rate = BitRate::from_kbps(999);
        assert_eq!(m.total_rate(), BitRate::from_kbps(64));
    }

    #[test]
    fn iteration_is_ordered() {
        let mut m = Mfib::new();
        let t = now();
        m.entry(
            SourceGroup::sg(Ip::new(9, 0, 0, 1), g(5)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            t,
        );
        m.entry(
            SourceGroup::sg(Ip::new(1, 0, 0, 1), g(5)),
            IfaceId(0),
            EntryOrigin::Dvmrp,
            t,
        );
        let keys: Vec<Ip> = m.iter().map(|e| e.key.source).collect();
        assert_eq!(keys, vec![Ip::new(1, 0, 0, 1), Ip::new(9, 0, 0, 1)]);
    }
}
