//! Golden churn fixture: a seeded partition-and-heal run's full stdout —
//! usage lines, tables, the per-router health table with lifecycle
//! states, and the topology-event strip — matches the transcript
//! committed under `tests/data/`. The strip doubles as an RNG canary: any
//! renumbering of the seeded churn draw sequence (an extra draw, a
//! reordered pair) moves every scheduled event and shows up as a diff.
//!
//! To bless an intentional change:
//! `MANTRA_BLESS=1 cargo test -p mantra-cli --test churn_golden`

use std::path::PathBuf;
use std::process::Command;

#[test]
fn churn_partition_run_matches_golden_transcript() {
    let bin = env!("CARGO_BIN_EXE_mantra");
    let run = Command::new(bin)
        .args(["monitor", "--churn", "partition", "--seed", "42"])
        .args(["--hours", "72"])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "churned monitor run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let got = String::from_utf8(run.stdout).unwrap();

    // The fixture lives in the workspace-root tests/data/, next to the
    // other cross-crate fixtures.
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data/churn_partition_seed42.txt");
    if std::env::var_os("MANTRA_BLESS").is_some() {
        std::fs::write(&golden_path, &got).unwrap();
        eprintln!("blessed {}", golden_path.display());
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with MANTRA_BLESS=1 to create)", golden_path.display()));
    assert_eq!(
        got,
        want,
        "churned run diverged from {} — if the change is intentional, \
         re-bless with MANTRA_BLESS=1",
        golden_path.display()
    );

    // Sanity on the fixture itself: it must exercise a partition AND its
    // heal, and surface the lifecycle column.
    assert!(got.contains("partition {"), "fixture lost its partition");
    assert!(got.contains("heal"), "fixture lost its heal");
    assert!(got.contains("state"), "health table lost the state column");
}
