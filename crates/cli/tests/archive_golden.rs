//! Golden test: a seeded monitor run writes a file archive whose
//! `mantra archive replay` transcript matches the committed golden file.
//! Guards both the simulator's determinism and the archive format — a
//! change to either shows up as a diff against `tests/golden/`.

use std::path::PathBuf;
use std::process::Command;

#[test]
fn archive_replay_matches_golden() {
    let dir = std::env::temp_dir().join(format!("mantra-archive-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bin = env!("CARGO_BIN_EXE_mantra");

    let monitor = Command::new(bin)
        .args(["monitor", "--seed", "7", "--hours", "2"])
        .args(["--archive-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        monitor.status.success(),
        "monitor failed: {}",
        String::from_utf8_lossy(&monitor.stderr)
    );

    let archive = dir.join("fixw.marc");
    let replay = Command::new(bin)
        .args(["archive", "replay", "--path", archive.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        replay.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let got = String::from_utf8(replay.stdout).unwrap();

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/archive_replay_fixw.txt");
    let want = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        got,
        want,
        "archive replay diverged from {}",
        golden_path.display()
    );

    // `archive info` must read the same file without error, and a fresh
    // monitor run writes the v2 dictionary format.
    let info = Command::new(bin)
        .args(["archive", "info", "--path", archive.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(info.status.success());
    let info_out = String::from_utf8(info.stdout).unwrap();
    assert!(
        info_out.contains("MANTRARC v2"),
        "unexpected info output:\n{info_out}"
    );
    assert!(
        info_out.contains("dictionary:  epoch 1"),
        "unexpected info output:\n{info_out}"
    );

    // Compacting with --drop-before rewrites to a smaller archive at the
    // next dictionary epoch; the cutoff here predates every record, so
    // nothing is dropped and replay transcripts stay identical.
    let compacted = dir.join("fixw-compact.marc");
    let compact = Command::new(bin)
        .args(["archive", "compact", "--path", archive.to_str().unwrap()])
        .args(["--out", compacted.to_str().unwrap()])
        .args(["--drop-before", "1990-01-01"])
        .output()
        .unwrap();
    assert!(
        compact.status.success(),
        "compact failed: {}",
        String::from_utf8_lossy(&compact.stderr)
    );
    let compact_out = String::from_utf8(compact.stdout).unwrap();
    assert!(
        compact_out.contains("dictionary epoch 2"),
        "unexpected compact output:\n{compact_out}"
    );
    let replay2 = Command::new(bin)
        .args(["archive", "replay", "--path", compacted.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(replay2.status.success());
    assert_eq!(String::from_utf8(replay2.stdout).unwrap(), got);

    std::fs::remove_dir_all(&dir).unwrap();
}
