//! Minimal flag parsing: `--key value` pairs with typed accessors. No
//! third-party parser — the option surface is tiny and the error messages
//! matter more than features.

use std::collections::BTreeMap;

/// Parsed `--key value` options.
#[derive(Debug, Default)]
pub struct Opts {
    map: BTreeMap<String, String>,
}

impl Opts {
    /// Parses alternating `--key value` tokens.
    pub fn parse(tokens: &[String]) -> Result<Opts, String> {
        let mut map = BTreeMap::new();
        let mut it = tokens.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{tok}'"))?;
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Opts { map })
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// u64 option with default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: '{v}' is not an integer")),
        }
    }

    /// f64 option with default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: '{v}' is not a number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let o = Opts::parse(&toks(&["--seed", "7", "--native", "0.5"])).unwrap();
        assert_eq!(o.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(o.f64_or("native", 0.0).unwrap(), 0.5);
        assert_eq!(o.u64_or("hours", 12).unwrap(), 12);
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Opts::parse(&toks(&["seed", "7"])).is_err());
        assert!(Opts::parse(&toks(&["--seed"])).is_err());
        let o = Opts::parse(&toks(&["--seed", "x"])).unwrap();
        assert!(o.u64_or("seed", 0).is_err());
    }
}
