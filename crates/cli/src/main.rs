//! `mantra` — the command-line front end.
//!
//! ```text
//! mantra monitor  [--seed N] [--native F] [--hours H] [--loss P] [--html FILE]
//! mantra health   [--seed N] [--fail P] [--truncate P] [--retries N]
//! mantra incident [--seed N]                 # replay Figure 9 and diagnose
//! mantra mwatch   [--seed N] [--native F]    # map the internetwork
//! mantra mtrace   [--seed N] [--native F]    # trace to the busiest sender
//! mantra snmpwalk [--seed N] [--native F] [--oid OID]
//! ```
//!
//! Everything runs against the simulated internetwork (see DESIGN.md);
//! seeds make every run reproducible.

use std::process::ExitCode;

mod args;
mod cmd;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", cmd::USAGE);
        return ExitCode::from(2);
    };
    let opts = match args::Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cmd::USAGE);
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "monitor" => cmd::monitor(&opts),
        "health" => cmd::health(&opts),
        "incident" => cmd::incident(&opts),
        "mwatch" => cmd::mwatch(&opts),
        "mtrace" => cmd::mtrace(&opts),
        "snmpwalk" => cmd::snmpwalk(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", cmd::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
