//! `mantra` — the command-line front end.
//!
//! ```text
//! mantra monitor  [--seed N] [--native F] [--hours H] [--loss P] [--html FILE]
//!                 [--archive-dir DIR]
//! mantra health   [--seed N] [--fail P] [--truncate P] [--retries N]
//! mantra daemon   [--addr HOST:PORT] [--archive-dir DIR] [--cycles N]
//! mantra incident [--seed N]                 # replay Figure 9 and diagnose
//! mantra archive  info|replay|compact ...    # inspect on-disk archives
//! mantra mwatch   [--seed N] [--native F]    # map the internetwork
//! mantra mtrace   [--seed N] [--native F]    # trace to the busiest sender
//! mantra snmpwalk [--seed N] [--native F] [--oid OID]
//! ```
//!
//! Everything runs against the simulated internetwork (see DESIGN.md);
//! seeds make every run reproducible.

use std::process::ExitCode;

mod args;
mod cmd;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, mut rest)) = argv.split_first() else {
        eprintln!("{}", cmd::USAGE);
        return ExitCode::from(2);
    };
    // `archive` takes a subcommand word before its --flag options.
    let mut subcmd: Option<&str> = None;
    if cmd == "archive" {
        match rest.split_first() {
            Some((sub, r)) if !sub.starts_with("--") => {
                subcmd = Some(sub);
                rest = r;
            }
            _ => {
                eprintln!(
                    "error: archive needs a subcommand (info, replay or compact)\n\n{}",
                    cmd::USAGE
                );
                return ExitCode::from(2);
            }
        }
    }
    let opts = match args::Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cmd::USAGE);
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "monitor" => cmd::monitor(&opts),
        "daemon" => cmd::daemon(&opts),
        "archive" => cmd::archive(subcmd.expect("parsed above"), &opts),
        "health" => cmd::health(&opts),
        "incident" => cmd::incident(&opts),
        "mwatch" => cmd::mwatch(&opts),
        "mtrace" => cmd::mtrace(&opts),
        "snmpwalk" => cmd::snmpwalk(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", cmd::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
