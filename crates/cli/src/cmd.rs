//! The subcommand implementations.

use std::path::{Path, PathBuf};

use mantra_core::archive::replay_summary_line;
use mantra_core::collector::{FlakyAccess, SimAccess};
use mantra_core::logger::{compact_archive, CompactOptions, TableLog};
use mantra_core::{
    ArchiveSpec, BackpressureMode, FleetMonitor, Monitor, MonitorConfig, RetryPolicy, SyncPolicy,
    WriterConfig,
};
use mantra_daemon::Engine;
use mantra_net::{SimDuration, SimTime};
use mantra_sim::{ChurnProfile, ChurnSchedule, Scenario};

use crate::args::Opts;

/// Top-level usage text.
pub const USAGE: &str = "\
mantra — router-based multicast monitoring (simulated 1998-2000 internetwork)

USAGE:
  mantra monitor  [--seed N] [--native F] [--hours H] [--loss P] [--html FILE]
                  [--archive-dir DIR] [--fsync-every N] [--fsync-bytes B]
                  [--archive-writer sync|block|shed] [--archive-queue N]
                  [--fleet R] [--shards N] [--table-rows N]
                  [--churn calm|flappy|partition]
  mantra health   [--seed N] [--native F] [--hours H] [--fail P] [--truncate P]
                  [--retries N]
  mantra daemon   [--addr HOST:PORT] [--seed N] [--native F] [--loss P]
                  [--archive-dir DIR] [--cycles N] [--tick-ms MS] [--refresh S]
                  [--fleet R] [--shards N] [--churn P]
                  [archive writer flags as monitor]
  mantra incident [--seed N]
  mantra archive  info    --path FILE
  mantra archive  replay  --path FILE
  mantra archive  compact --path FILE --out FILE [--full-every N]
                  [--drop-before TS]
  mantra mwatch   [--seed N] [--native F]
  mantra mtrace   [--seed N] [--native F]
  mantra snmpwalk [--seed N] [--native F] [--oid OID] [--community STR]

OPTIONS:
  --seed N        scenario seed (default 1998)
  --native F      fraction of domains already native sparse-mode (default 0.4)
  --hours H       hours of simulated monitoring (default 12)
  --loss P        DVMRP report loss probability (default 0.02)
  --html FILE     also write an HTML report
  --archive-dir DIR  persist per-router table logs as .marc archives in DIR
  --fsync-every N batch fsync: sync after every N appends (0 = checkpoints only)
  --fsync-bytes B batch fsync: sync after B unsynced bytes (0 = checkpoints only)
  --archive-writer M  archive I/O mode: sync (default, writes on the collection
                  path), block (writer thread, full queue blocks), or shed
                  (writer thread, full queue drops the record — loudly)
  --archive-queue N  writer-thread queue capacity in records (default 64)
  --fleet R       fleet mode: monitor a fleet-scale scenario of ~R routers
                  (all of them), sharded across --shards monitors
  --shards N      monitor shards for fleet mode (default 1; implies --fleet 50
                  when --fleet is absent)
  --table-rows N  fleet tables degrade to the worst N rows + a totals footer
                  (default 64)
  --churn P       churn the topology mid-run: routers join/leave, links flap,
                  domains partition and heal. P is calm, flappy or partition;
                  the schedule is deterministic in (P, --seed). Prints the
                  topology-event strip and the per-router health table with
                  lifecycle states (active / stale(n) / retired)
  --path FILE     archive to inspect (.marc binary or legacy .jsonl)
  --out FILE      destination archive for `archive compact`
  --full-every N  full-snapshot checkpoint cadence when rewriting (default 96)
  --drop-before TS  compaction: drop snapshots captured before TS — either raw
                  Unix seconds or ISO `YYYY-MM-DD[THH:MM:SS]`
  --addr HOST:PORT  daemon bind address (default 127.0.0.1:4617; port 0 picks
                  an ephemeral port, printed on startup)
  --cycles N      daemon: stop collecting after N cycles but keep serving
                  queries (default 0 = collect forever)
  --tick-ms MS    daemon: wall-clock pause between collection cycles
                  (default 250)
  --refresh S     daemon: live-report auto-refresh cadence in seconds
                  (default 2)
  --fail P        injected login-failure probability (default 0.2)
  --truncate P    injected truncation probability (default 0.1)
  --retries N     capture attempts per table per cycle (default 3)
  --oid OID       subtree to walk (default 1.3.6.1.2.1)
  --community STR SNMP community (default public)";

fn scenario(opts: &Opts) -> Result<Scenario, String> {
    let seed = opts.u64_or("seed", 1998)?;
    let native = opts.f64_or("native", 0.4)?;
    if !(0.0..=1.0).contains(&native) {
        return Err("--native must be in [0,1]".into());
    }
    let loss = opts.f64_or("loss", 0.02)?;
    if !(0.0..=1.0).contains(&loss) {
        return Err("--loss must be in [0,1]".into());
    }
    let mut sc = Scenario::transition_snapshot(seed, native);
    sc.sim.set_report_loss(loss);
    Ok(sc)
}

fn warmed(opts: &Opts, hours: u64) -> Result<Scenario, String> {
    let mut sc = scenario(opts)?;
    let until = sc.sim.clock + SimDuration::hours(hours);
    sc.sim.advance_to(until);
    Ok(sc)
}

/// Resolves `--churn <profile>` into a schedule installed on the
/// scenario, or `None` when the flag is absent. Deterministic in
/// `(profile, --seed)` — two runs with the same flags replay the same
/// topology history.
fn churn_schedule(opts: &Opts, sc: &mut Scenario) -> Result<Option<ChurnSchedule>, String> {
    let Some(name) = opts.get("churn") else {
        return Ok(None);
    };
    let profile = ChurnProfile::parse(name)
        .ok_or_else(|| format!("--churn '{name}': expected calm, flappy or partition"))?;
    let seed = opts.u64_or("seed", 1998)?;
    let schedule = sc.with_churn(profile, seed);
    eprintln!(
        "churn profile '{}' (seed {seed}): {} topology event(s) scheduled",
        profile.name(),
        schedule.len(),
    );
    Ok(Some(schedule))
}

/// Prints the topology-event strip for a churned run.
fn print_event_strip(schedule: &ChurnSchedule) {
    println!("topology events:");
    for (at, label) in schedule.strip(None) {
        println!("  {}  {label}", at.iso8601());
    }
}

/// Resolves the archive flags shared by `monitor` and `daemon` into an
/// [`ArchiveSpec`] (plus the directory, when on disk).
fn archive_spec(opts: &Opts) -> Result<(ArchiveSpec, Option<PathBuf>), String> {
    let archive_dir = opts.get("archive-dir").map(PathBuf::from);
    // Validated whether or not --archive-dir is given: a typo'd mode must
    // error, not silently monitor without the writer the user asked for.
    let writer_mode = match opts.get("archive-writer").unwrap_or("sync") {
        "sync" => None,
        "block" => Some(BackpressureMode::Block),
        "shed" => Some(BackpressureMode::Shed),
        other => {
            return Err(format!(
                "--archive-writer '{other}': expected sync, block or shed"
            ))
        }
    };
    let capacity = opts.u64_or("archive-queue", 64)?.max(1) as usize;
    let archive = match &archive_dir {
        Some(dir) => {
            let sync = SyncPolicy {
                on_checkpoint: true,
                every_records: opts.u64_or("fsync-every", 0)? as usize,
                every_bytes: opts.u64_or("fsync-bytes", 0)?,
            };
            match writer_mode {
                None => ArchiveSpec::File {
                    dir: dir.clone(),
                    sync,
                },
                Some(mode) => ArchiveSpec::Threaded {
                    dir: dir.clone(),
                    sync,
                    writer: WriterConfig { capacity, mode },
                },
            }
        }
        None => ArchiveSpec::Memory,
    };
    Ok((archive, archive_dir))
}

/// `mantra monitor`: run the full pipeline and print Mantra's output.
pub fn monitor(opts: &Opts) -> Result<(), String> {
    let hours = opts.u64_or("hours", 12)?;
    let (archive, archive_dir) = archive_spec(opts)?;
    if opts.get("fleet").is_some() || opts.get("shards").is_some() {
        return monitor_fleet(opts, archive, archive_dir.as_deref());
    }
    let mut sc = scenario(opts)?;
    let churn = churn_schedule(opts, &mut sc)?;
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        archive,
        ..MonitorConfig::default()
    });
    let cycles = hours * 3_600 / monitor.cfg.interval.as_secs();
    eprintln!("monitoring {hours}h of simulated time ({cycles} cycles)...");
    let mut now = sc.sim.clock;
    for _ in 0..cycles {
        now = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(now);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, now);
    }
    for router in ["fixw", "ucsb-gw"] {
        let Some(u) = monitor.usage_history(router).last() else {
            continue;
        };
        let r = monitor.route_history(router).last().expect("same cycles");
        println!(
            "{router}: {} sessions ({} active), {} participants ({} senders), {}, {} DVMRP routes",
            u.sessions,
            u.active_sessions,
            u.participants,
            u.senders,
            u.total_bandwidth,
            r.dvmrp_reachable,
        );
    }
    println!("\n{}", monitor.busiest_sessions("fixw", 8).render());
    println!("{}", monitor.usage_graph("fixw").render(96, 14));
    if !monitor.anomalies.is_empty() {
        println!(
            "{} anomaly(ies) detected; first: {:?}",
            monitor.anomalies.len(),
            monitor.anomalies[0]
        );
    }
    if let Some(schedule) = &churn {
        // A churned run surfaces the lifecycle column — routers that
        // left are stale(n) or retired, not silently absent.
        println!("\n{}", monitor.health(now).render());
        print_event_strip(schedule);
    }
    if let Some(dir) = &archive_dir {
        println!("\n{}", monitor.archive_table().render());
        eprintln!("archives written under {}", dir.display());
    }
    if let Some(path) = opts.get("html") {
        let events = churn.as_ref().map(|s| s.strip(None)).unwrap_or_default();
        std::fs::write(
            path,
            mantra_core::web::report_html_with_events(&monitor, "fixw", &events),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `mantra monitor --fleet R [--shards N]`: the sharded fleet path over
/// the fleet-scale scenario, every router monitored. Everything printed
/// to stdout is shard-invariant — the fleet-smoke CI job diffs a
/// `--shards 1` run against a `--shards 4` run and expects no output
/// difference, which is exactly the aggregation tier's exactness claim.
fn monitor_fleet(
    opts: &Opts,
    archive: ArchiveSpec,
    archive_dir: Option<&Path>,
) -> Result<(), String> {
    let hours = opts.u64_or("hours", 12)?;
    let seed = opts.u64_or("seed", 1998)?;
    let native = opts.f64_or("native", 0.4)?;
    if !(0.0..=1.0).contains(&native) {
        return Err("--native must be in [0,1]".into());
    }
    let loss = opts.f64_or("loss", 0.02)?;
    if !(0.0..=1.0).contains(&loss) {
        return Err("--loss must be in [0,1]".into());
    }
    let target = opts.u64_or("fleet", 50)? as usize;
    if target < 3 {
        return Err("--fleet must be at least 3 routers".into());
    }
    let shards = opts.u64_or("shards", 1)?.max(1) as usize;
    let table_rows = opts.u64_or("table-rows", 64)?.max(1) as usize;
    let mut sc = Scenario::fleet_snapshot(seed, target, native);
    sc.sim.set_report_loss(loss);
    let churn = churn_schedule(opts, &mut sc)?;
    let routers: Vec<String> = sc
        .sim
        .monitored
        .iter()
        .map(|id| sc.sim.net.topo.router(*id).name.clone())
        .collect();
    let mut fleet = FleetMonitor::new(
        MonitorConfig {
            routers,
            interval: sc.sim.tick(),
            archive,
            table_detail_limit: table_rows,
            ..MonitorConfig::default()
        },
        shards,
    );
    let cycles = hours * 3_600 / fleet.cfg.interval.as_secs();
    eprintln!(
        "monitoring {} routers across {} shard(s), {hours}h of simulated time ({cycles} cycles)...",
        fleet.cfg.routers.len(),
        fleet.shard_count(),
    );
    let mut now = sc.sim.clock;
    for _ in 0..cycles {
        now = sc.sim.clock + fleet.cfg.interval;
        sc.sim.advance_to(now);
        fleet.run_cycle(&sc.sim, now);
    }
    if let (Some(u), Some(r)) = (fleet.usage_history().last(), fleet.route_history().last()) {
        println!(
            "fleet: {} sessions ({} active), {} participants ({} senders), {}, {} DVMRP routes",
            u.sessions,
            u.active_sessions,
            u.participants,
            u.senders,
            u.total_bandwidth,
            r.dvmrp_reachable,
        );
    }
    println!("{} anomaly(ies) fleet-wide", fleet.anomalies.len());
    // The shard column stays off stdout (it is the one shard-dependent
    // value); the HTML report keeps it.
    let mut health = fleet.health(now);
    health.drop_column("shard");
    println!("\n{}", health.render());
    if let Some(schedule) = &churn {
        // The strip is shard-invariant, so it is safe on the stdout the
        // fleet-smoke job diffs across shard counts.
        print_event_strip(schedule);
    }
    if let Some(dir) = archive_dir {
        let mut archives = fleet.archive_table();
        archives.drop_column("shard");
        println!("{}", archives.render());
        eprintln!("archives written under {}", dir.display());
    }
    println!("{}", fleet.usage_graph().render(96, 14));
    if let Some(path) = opts.get("html") {
        let events = churn.as_ref().map(|s| s.strip(None)).unwrap_or_default();
        std::fs::write(
            path,
            mantra_core::web::fleet_report_html_with_events(&fleet, now, &events),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `mantra daemon`: run mantrad — collection on a tick thread, concurrent
/// HTTP/1.1 + JSON queries (health, usage, anomalies, parse accounting,
/// time-travel archive replay) until SIGTERM/SIGINT.
pub fn daemon(opts: &Opts) -> Result<(), String> {
    use std::time::Duration;

    let (archive, archive_dir) = archive_spec(opts)?;
    let addr = opts.get("addr").unwrap_or("127.0.0.1:4617").to_string();
    let cycles = opts.u64_or("cycles", 0)?;
    let cfg = mantra_daemon::DaemonConfig {
        addr,
        refresh_secs: opts.u64_or("refresh", 2)?.max(1),
        tick: Duration::from_millis(opts.u64_or("tick-ms", 250)?),
        max_cycles: (cycles > 0).then_some(cycles),
        ..mantra_daemon::DaemonConfig::default()
    };
    if archive_dir.is_none() {
        eprintln!("note: archives are in-memory (no --archive-dir); /replay has nothing to serve");
    }
    type Tick = Box<dyn FnMut(&mut Engine) -> SimTime + Send>;
    let fleet_mode = opts.get("fleet").is_some() || opts.get("shards").is_some();
    let (cfg, engine, tick): (_, Engine, Tick) = if fleet_mode {
        let seed = opts.u64_or("seed", 1998)?;
        let native = opts.f64_or("native", 0.4)?;
        let loss = opts.f64_or("loss", 0.02)?;
        if !(0.0..=1.0).contains(&native) || !(0.0..=1.0).contains(&loss) {
            return Err("--native and --loss must be in [0,1]".into());
        }
        let target = opts.u64_or("fleet", 50)? as usize;
        let shards = opts.u64_or("shards", 1)?.max(1) as usize;
        let table_rows = opts.u64_or("table-rows", 64)?.max(1) as usize;
        let mut sc = Scenario::fleet_snapshot(seed, target, native);
        sc.sim.set_report_loss(loss);
        let churn = churn_schedule(opts, &mut sc)?;
        let routers: Vec<String> = sc
            .sim
            .monitored
            .iter()
            .map(|id| sc.sim.net.topo.router(*id).name.clone())
            .collect();
        let router = routers.first().cloned().unwrap_or_default();
        let fleet = FleetMonitor::new(
            MonitorConfig {
                routers,
                interval: sc.sim.tick(),
                archive,
                table_detail_limit: table_rows,
                ..MonitorConfig::default()
            },
            shards,
        );
        let interval = fleet.cfg.interval;
        let tick: Tick = Box::new(move |engine| {
            let next = sc.sim.clock + interval;
            sc.sim.advance_to(next);
            if let Engine::Fleet(f) = engine {
                f.run_cycle(&sc.sim, next);
            }
            next
        });
        let cfg = mantra_daemon::DaemonConfig {
            router,
            topology_events: churn.as_ref().map(|s| s.strip(None)).unwrap_or_default(),
            ..cfg
        };
        (cfg, Engine::Fleet(fleet), tick)
    } else {
        let mut sc = scenario(opts)?;
        let churn = churn_schedule(opts, &mut sc)?;
        let monitor = Monitor::new(MonitorConfig {
            routers: vec!["fixw".into(), "ucsb-gw".into()],
            interval: sc.sim.tick(),
            archive,
            ..MonitorConfig::default()
        });
        let interval = monitor.cfg.interval;
        let tick: Tick = Box::new(move |engine| {
            let next = sc.sim.clock + interval;
            sc.sim.advance_to(next);
            if let Engine::Single(m) = engine {
                let mut access = SimAccess::new(&sc.sim);
                m.run_cycle(&mut access, next);
            }
            next
        });
        let cfg = mantra_daemon::DaemonConfig {
            topology_events: churn.as_ref().map(|s| s.strip(None)).unwrap_or_default(),
            ..cfg
        };
        (cfg, Engine::Single(monitor), tick)
    };
    let handle =
        mantra_daemon::spawn(cfg, engine, tick).map_err(|e| format!("starting mantrad: {e}"))?;
    mantra_daemon::install_signal_handlers();
    eprintln!("mantrad listening on http://{}", handle.addr());
    if cycles > 0 {
        eprintln!("collection stops after {cycles} cycle(s); queries keep serving");
    }
    while !mantra_daemon::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("mantrad: shutdown signal received, exiting");
    handle.stop();
    Ok(())
}

/// `mantra archive`: inspect, replay, or rewrite an on-disk table archive.
pub fn archive(sub: &str, opts: &Opts) -> Result<(), String> {
    match sub {
        "info" => archive_info(opts),
        "replay" => archive_replay(opts),
        "compact" => archive_compact(opts),
        other => Err(format!(
            "unknown archive subcommand '{other}' (expected info, replay or compact)"
        )),
    }
}

fn required_path<'a>(opts: &'a Opts, key: &str) -> Result<&'a Path, String> {
    opts.get(key)
        .map(Path::new)
        .ok_or_else(|| format!("--{key} FILE is required"))
}

/// Opens an archive for inspection without ever writing to it — `info`
/// and `replay` are read paths, so they must not heal (truncate) a torn
/// tail out from under a process still appending to the file.
fn load_archive(path: &Path, full_every: usize) -> Result<TableLog, String> {
    TableLog::load_read_only(path, full_every).map_err(|e| format!("{}: {e}", path.display()))
}

fn archive_info(opts: &Opts) -> Result<(), String> {
    let path = required_path(opts, "path")?;
    let log = load_archive(path, opts.u64_or("full-every", 96)? as usize)?;
    let stats = log.archive_stats();
    let info = log.describe();
    let format = match info.format_version {
        0 => "JSON-lines (legacy)".to_string(),
        1 => "MANTRARC v1 (binary, length-prefixed, JSON payloads)".to_string(),
        v => format!("MANTRARC v{v} (binary, id-keyed, embedded dictionary)"),
    };
    println!("archive:     {}", path.display());
    println!("format:      {format}");
    if info.format_version >= 2 {
        println!(
            "dictionary:  epoch {}, {} interned entries",
            info.epoch, info.dict_entries
        );
    }
    println!(
        "records:     {} ({} checkpoints)",
        stats.records, stats.checkpoints
    );
    println!("stored:      {} bytes", stats.bytes);
    if stats.recovered_bytes > 0 {
        println!(
            "recovered:   {} bytes of corrupt tail dropped on open",
            stats.recovered_bytes
        );
    }
    if let Some(t) = log.last() {
        println!("tail:        {} at {}", t.router, t.captured_at.iso8601());
    }
    Ok(())
}

fn archive_replay(opts: &Opts) -> Result<(), String> {
    let path = required_path(opts, "path")?;
    let log = load_archive(path, opts.u64_or("full-every", 96)? as usize)?;
    let mut snapshots = 0usize;
    for (i, tables) in log.replay_iter().enumerate() {
        let tables = tables.map_err(|e| format!("replay failed at record {i}: {e}"))?;
        println!("{}", replay_summary_line(i, &tables));
        snapshots += 1;
    }
    eprintln!("{snapshots} snapshot(s) replayed");
    Ok(())
}

/// Parses a `--drop-before` timestamp: raw Unix seconds, `YYYY-MM-DD`,
/// or `YYYY-MM-DDTHH:MM:SS` (UTC). Now shared with the daemon's `at=` and
/// `since=` query parameters via [`SimTime::parse`].
fn parse_sim_time(s: &str) -> Result<SimTime, String> {
    SimTime::parse(s)
}

fn archive_compact(opts: &Opts) -> Result<(), String> {
    let path = required_path(opts, "path")?;
    let out = required_path(opts, "out")?;
    if out == path {
        return Err("--out must differ from --path".into());
    }
    let full_every = opts.u64_or("full-every", 96)? as usize;
    let drop_before = opts.get("drop-before").map(parse_sim_time).transpose()?;
    let src = load_archive(path, full_every)?;
    let (dst, dropped) = compact_archive(
        &src,
        out,
        &CompactOptions {
            full_every,
            drop_before,
            sync: SyncPolicy::default(),
        },
    )
    .map_err(|e| format!("compacting into {}: {e}", out.display()))?;
    let before = src.archive_stats();
    let after = dst.archive_stats();
    let info = dst.describe();
    println!(
        "compacted {} ({} records, {} bytes) into {} ({} records, {} bytes, {} checkpoints)",
        path.display(),
        before.records,
        before.bytes,
        out.display(),
        after.records,
        after.bytes,
        after.checkpoints,
    );
    println!(
        "format:      MANTRARC v{}, dictionary epoch {} ({} entries)",
        info.format_version, info.epoch, info.dict_entries
    );
    if dropped > 0 {
        println!("dropped:     {dropped} snapshot(s) before the --drop-before cutoff");
    }
    Ok(())
}

/// `mantra health`: monitor through injected capture failures with the
/// resilient parallel collector and report per-router collection health.
pub fn health(opts: &Opts) -> Result<(), String> {
    let hours = opts.u64_or("hours", 12)?;
    let fail = opts.f64_or("fail", 0.2)?;
    let truncate = opts.f64_or("truncate", 0.1)?;
    let retries = opts.u64_or("retries", 3)?;
    if !(0.0..=1.0).contains(&fail) || !(0.0..=1.0).contains(&truncate) {
        return Err("--fail and --truncate must be in [0,1]".into());
    }
    if retries == 0 {
        return Err("--retries must be at least 1".into());
    }
    let seed = opts.u64_or("seed", 1998)?;
    let mut sc = scenario(opts)?;
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        retry: RetryPolicy {
            max_attempts: retries as u32,
            ..RetryPolicy::default()
        },
        ..MonitorConfig::default()
    });
    let cycles = hours * 3_600 / monitor.cfg.interval.as_secs();
    eprintln!(
        "monitoring {hours}h ({cycles} cycles) with {:.0}% login failures, \
         {:.0}% truncations, {retries} attempts per capture...",
        fail * 100.0,
        truncate * 100.0,
    );
    let mut now = sc.sim.clock;
    for i in 0..cycles {
        now = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(now);
        let access = FlakyAccess::new(&sc.sim, fail, truncate, seed ^ i);
        monitor.run_cycle_parallel(&access, now);
    }
    println!("{}", monitor.health(now).render());
    println!("\n{}", monitor.stage_table().render());
    println!("\n{}", monitor.parse_table().render());
    let cache = monitor.query_cache().stats();
    println!(
        "\nquery cache: {} hit(s), {} miss(es), {} eviction(s), {} entr{} resident",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        if cache.entries == 1 { "y" } else { "ies" }
    );
    if monitor.parse_degraded() {
        let s = monitor.parse_last;
        println!(
            "WARNING: degraded parse — {} of {} row-like lines malformed in the last \
             cycle (threshold {}%); CLI output formats may have drifted",
            s.malformed,
            s.parsed + s.malformed,
            mantra_core::monitor::DEGRADED_PARSE_PCT,
        );
    }
    let degraded: Vec<&str> = monitor
        .cfg
        .routers
        .iter()
        .filter(|r| monitor.router_health(r).is_some_and(|h| h.archive_degraded))
        .map(String::as_str)
        .collect();
    if !degraded.is_empty() {
        println!(
            "WARNING: degraded persistence on {} — archives fell back to memory, \
             hit write/replay errors, or shed records on a full writer queue; \
             the archived data is incomplete or will not survive a restart",
            degraded.join(", ")
        );
    }
    for router in &monitor.cfg.routers.clone() {
        let Some(h) = monitor.router_health(router) else {
            continue;
        };
        let attempts = h.successes + h.failures;
        if attempts > 0 {
            println!(
                "{router}: {:.1}% captured ({} recovered by retry, {} salvaged from partials)",
                h.successes as f64 / attempts as f64 * 100.0,
                h.retry_successes,
                h.salvaged,
            );
        }
    }
    Ok(())
}

/// `mantra incident`: replay the 1998-10-14 route injection and diagnose.
pub fn incident(opts: &Opts) -> Result<(), String> {
    let seed = opts.u64_or("seed", 1998)?;
    let mut sc = Scenario::ucsb_injection_day(seed);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let end = sc.sim.end_time();
    loop {
        let next = sc.sim.clock + monitor.cfg.interval;
        if next > end {
            break;
        }
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let series = monitor.route_series("ucsb-gw", "dvmrp-routes", |r| r.dvmrp_reachable as f64);
    let mut g = mantra_core::output::Graph::new("DVMRP routes at ucsb-gw, 1998-10-14");
    g.overlay(series);
    println!("{}", g.render(96, 14));
    let injection = monitor.anomalies.iter().find(|a| {
        matches!(
            a.kind,
            mantra_core::anomaly::AnomalyKind::RouteInjection { .. }
        )
    });
    match injection {
        Some(a) => println!("diagnosis: {:?} at {}", a.kind, a.at),
        None => println!("no injection detected (unexpected)"),
    }
    Ok(())
}

/// `mantra mwatch`: map the internetwork.
pub fn mwatch(opts: &Opts) -> Result<(), String> {
    let sc = warmed(opts, 2)?;
    let report = mantra_tools::mwatch(&sc.sim.net, sc.ucsb);
    println!("{}", report.summary());
    for r in &report.routers {
        print!("{}", r.render());
    }
    Ok(())
}

/// `mantra mtrace`: trace from FIXW to the busiest sender.
pub fn mtrace(opts: &Opts) -> Result<(), String> {
    let sc = warmed(opts, 4)?;
    let Some((group, part)) = sc
        .sim
        .sessions
        .iter()
        .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
        .max_by_key(|(_, p)| p.rate.bps())
    else {
        return Err("no sessions live; try another seed".into());
    };
    let trace = mantra_tools::mtrace(&sc.sim.net, sc.fixw, part.addr, group);
    print!("{}", trace.render(part.addr, group));
    Ok(())
}

/// `mantra snmpwalk`: walk an agent subtree on FIXW.
pub fn snmpwalk(opts: &Opts) -> Result<(), String> {
    let sc = warmed(opts, 4)?;
    let community = opts.get("community").unwrap_or("public");
    let oid: mantra_snmp::Oid = opts
        .get("oid")
        .unwrap_or("1.3.6.1.2.1")
        .parse()
        .map_err(|_| "--oid: malformed OID".to_string())?;
    let mut agent = mantra_snmp::Agent::new("public");
    mantra_snmp::mib::refresh_agent(&mut agent, &sc.sim.net, sc.fixw, sc.sim.clock);
    let rows = agent.walk(community, &oid).map_err(|e| e.to_string())?;
    for (o, v) in &rows {
        println!("{o} = {v:?}");
    }
    eprintln!("{} bindings", rows.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sim_time_accepts_valid_forms() {
        assert_eq!(parse_sim_time("0").unwrap(), SimTime(0));
        assert_eq!(parse_sim_time("907113600").unwrap(), SimTime(907_113_600));
        assert_eq!(
            parse_sim_time("1970-01-01").unwrap(),
            SimTime::from_ymd_hms(1970, 1, 1, 0, 0, 0)
        );
        assert_eq!(
            parse_sim_time("1998-10-14T06:30:00").unwrap(),
            SimTime::from_ymd_hms(1998, 10, 14, 6, 30, 0)
        );
        // Leap days: every fourth year, and century years divisible by
        // 400.
        assert!(parse_sim_time("2024-02-29").is_ok());
        assert!(parse_sim_time("2000-02-29").is_ok());
        // Long and short month boundaries.
        assert!(parse_sim_time("2026-01-31").is_ok());
        assert!(parse_sim_time("2026-04-30").is_ok());
    }

    #[test]
    fn parse_sim_time_rejects_invalid_calendar_dates() {
        // Days that don't exist in their month.
        let e = parse_sim_time("2026-02-30").unwrap_err();
        assert!(e.contains("2026-02 has 28 days"), "{e}");
        assert!(parse_sim_time("2026-04-31").is_err());
        assert!(parse_sim_time("2026-06-31").is_err());
        // Non-leap years: plain, and the 100-not-400 century rule.
        assert!(parse_sim_time("2023-02-29").is_err());
        assert!(parse_sim_time("2100-02-29").is_err());
        // Out-of-range fields.
        assert!(parse_sim_time("2026-13-01").is_err());
        assert!(parse_sim_time("2026-00-10").is_err());
        assert!(parse_sim_time("2026-01-00").is_err());
        assert!(parse_sim_time("2026-01-32").is_err());
        assert!(parse_sim_time("1969-12-31").is_err());
        assert!(parse_sim_time("2026-01-01T24:00:00").is_err());
        assert!(parse_sim_time("2026-01-01T12:60:00").is_err());
        // Malformed shapes.
        assert!(parse_sim_time("2026-01").is_err());
        assert!(parse_sim_time("2026-01-01-01").is_err());
        assert!(parse_sim_time("2026-01-01T12:00").is_err());
        assert!(parse_sim_time("not-a-date").is_err());
    }
}
